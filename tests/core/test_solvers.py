"""Integration tests: the four Spark APSP solvers against ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import EngineConfig
from repro.common.errors import StorageExhaustedError
from repro.core import (
    BlockedCollectBroadcastSolver,
    BlockedInMemorySolver,
    FloydWarshall2DSolver,
    RepeatedSquaringSolver,
    SolverOptions,
)
from repro.graph.generators import (
    complete_adjacency,
    erdos_renyi_adjacency,
    path_adjacency,
    star_adjacency,
)
from repro.sequential.floyd_warshall import floyd_warshall_reference
from repro.spark.context import SparkContext
from repro.spark.faults import FaultPlan

ALL_SOLVERS = [RepeatedSquaringSolver, FloydWarshall2DSolver,
               BlockedInMemorySolver, BlockedCollectBroadcastSolver]
BLOCKED_SOLVERS = [BlockedInMemorySolver, BlockedCollectBroadcastSolver]


def run(solver_cls, adjacency, *, block_size=None, partitioner="MD", config=None, **kw):
    config = config or EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)
    options = SolverOptions(block_size=block_size, partitioner=partitioner, **kw)
    return solver_cls(config=config, options=options).solve(adjacency)


class TestCorrectnessAllSolvers:
    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_er_graph(self, solver_cls, small_er_graph, small_er_reference):
        result = run(solver_cls, small_er_graph, block_size=12)
        assert np.allclose(result.distances, small_er_reference)

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_path_graph(self, solver_cls, path_graph):
        result = run(solver_cls, path_graph, block_size=4)
        expected = np.abs(np.arange(12)[:, None] - np.arange(12)[None, :]).astype(float)
        assert np.allclose(result.distances, expected)

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_grid_graph(self, solver_cls, grid_graph):
        result = run(solver_cls, grid_graph, block_size=16)
        assert np.allclose(result.distances, floyd_warshall_reference(grid_graph))

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_disconnected_graph(self, solver_cls):
        adj = np.full((20, 20), np.inf)
        np.fill_diagonal(adj, 0.0)
        for i in range(0, 9):
            adj[i, i + 1] = adj[i + 1, i] = 1.0
        for i in range(12, 19):
            adj[i, i + 1] = adj[i + 1, i] = 2.0
        result = run(solver_cls, adj, block_size=6)
        assert np.allclose(result.distances, floyd_warshall_reference(adj))
        assert np.isinf(result.distances[0, 15])

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_star_graph(self, solver_cls):
        adj = star_adjacency(17, weight=2.0)
        result = run(solver_cls, adj, block_size=5)
        assert np.allclose(result.distances, floyd_warshall_reference(adj))

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_complete_graph(self, solver_cls):
        adj = complete_adjacency(18, seed=2)
        result = run(solver_cls, adj, block_size=6)
        assert np.allclose(result.distances, floyd_warshall_reference(adj))

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_block_size_not_dividing_n(self, solver_cls, small_er_graph, small_er_reference):
        result = run(solver_cls, small_er_graph, block_size=7)   # 48 = 6*7 + 6
        assert np.allclose(result.distances, small_er_reference)

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_single_block(self, solver_cls, small_er_graph, small_er_reference):
        result = run(solver_cls, small_er_graph, block_size=48)
        assert np.allclose(result.distances, small_er_reference)
        assert result.q == 1

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_tiny_graph(self, solver_cls):
        adj = path_adjacency(2)
        result = run(solver_cls, adj, block_size=1)
        assert result.distances[0, 1] == 1.0

    @pytest.mark.parametrize("solver_cls", BLOCKED_SOLVERS, ids=lambda c: c.name)
    @pytest.mark.parametrize("partitioner", ["MD", "PH", "GRID"])
    def test_partitioner_does_not_change_result(self, solver_cls, partitioner,
                                                small_er_graph, small_er_reference):
        result = run(solver_cls, small_er_graph, block_size=12, partitioner=partitioner)
        assert np.allclose(result.distances, small_er_reference)

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS, ids=lambda c: c.name)
    def test_threaded_backend(self, solver_cls, small_er_graph, small_er_reference):
        config = EngineConfig(backend="threads", num_executors=2, cores_per_executor=2)
        result = run(solver_cls, small_er_graph, block_size=16, config=config)
        assert np.allclose(result.distances, small_er_reference)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(6, 40), st.integers(2, 12), st.integers(0, 10_000))
    def test_property_blocked_cb_matches_reference(self, n, block_size, seed):
        block_size = min(block_size, n)
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.25)
        result = run(BlockedCollectBroadcastSolver, adj, block_size=block_size)
        assert np.allclose(result.distances, floyd_warshall_reference(adj))

    @settings(max_examples=6, deadline=None)
    @given(st.integers(6, 36), st.integers(2, 10), st.integers(0, 10_000))
    def test_property_blocked_im_matches_reference(self, n, block_size, seed):
        block_size = min(block_size, n)
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.25)
        result = run(BlockedInMemorySolver, adj, block_size=block_size)
        assert np.allclose(result.distances, floyd_warshall_reference(adj))


class TestResultMetadata:
    def test_iteration_counts(self, small_er_graph):
        # q = ceil(48 / 12) = 4 for the blocked solvers, n for FW-2D, q*log2 for RS.
        assert run(BlockedInMemorySolver, small_er_graph, block_size=12).iterations == 4
        assert run(BlockedCollectBroadcastSolver, small_er_graph, block_size=12).iterations == 4
        assert run(FloydWarshall2DSolver, small_er_graph, block_size=12).iterations == 48
        rs = run(RepeatedSquaringSolver, small_er_graph, block_size=12)
        assert rs.iterations == 6  # ceil(log2(47))

    def test_purity_flags(self, small_er_graph):
        assert run(BlockedInMemorySolver, small_er_graph, block_size=12).pure is True
        assert run(FloydWarshall2DSolver, small_er_graph, block_size=12).pure is True
        assert run(BlockedCollectBroadcastSolver, small_er_graph, block_size=12).pure is False
        assert run(RepeatedSquaringSolver, small_er_graph, block_size=12).pure is False

    def test_result_fields(self, small_er_graph):
        result = run(BlockedCollectBroadcastSolver, small_er_graph, block_size=16,
                     partitioner="md")
        assert result.n == 48
        assert result.block_size == 16
        assert result.q == 3
        assert result.partitioner == "MD"
        assert result.solver == "blocked-cb"
        assert result.elapsed_seconds > 0
        assert result.gops > 0
        assert "phase1-diagonal" in result.phase_seconds
        assert "blocked-cb" in result.summary()

    def test_metrics_snapshot_present(self, small_er_graph):
        result = run(BlockedInMemorySolver, small_er_graph, block_size=12)
        assert result.metrics["shuffle_count"] > 0
        assert result.metrics["tasks_launched"] > 0


class TestDataMovementCharacteristics:
    """The qualitative claims of Section 4: who shuffles, who collects, who uses shared storage."""

    def test_blocked_im_shuffles_but_avoids_shared_storage(self, small_er_graph):
        result = run(BlockedInMemorySolver, small_er_graph, block_size=12)
        assert result.metrics["shuffle_bytes"] > 0
        assert result.metrics["sharedfs_bytes_written"] == 0

    def test_blocked_cb_uses_shared_storage_and_driver_collects(self, small_er_graph):
        result = run(BlockedCollectBroadcastSolver, small_er_graph, block_size=12)
        assert result.metrics["sharedfs_bytes_written"] > 0
        assert result.metrics["collect_count"] > 0

    def test_blocked_cb_shuffles_less_than_im(self, medium_er_graph):
        im = run(BlockedInMemorySolver, medium_er_graph, block_size=16)
        cb = run(BlockedCollectBroadcastSolver, medium_er_graph, block_size=16)
        assert cb.metrics["shuffle_bytes"] < im.metrics["shuffle_bytes"]

    def test_fw2d_never_shuffles(self, small_er_graph):
        # The paper: 2D Floyd-Warshall needs no wide transformations at all.
        result = run(FloydWarshall2DSolver, small_er_graph, block_size=12)
        assert result.metrics["shuffle_count"] == 0
        assert result.metrics["broadcast_count"] == 48  # one broadcast per pivot

    def test_repeated_squaring_uses_shared_storage(self, small_er_graph):
        result = run(RepeatedSquaringSolver, small_er_graph, block_size=12)
        assert result.metrics["sharedfs_bytes_written"] > 0
        assert result.metrics["sharedfs_bytes_read"] > 0

    def test_fw2d_iterations_scale_with_n_not_q(self, small_er_graph):
        big_blocks = run(FloydWarshall2DSolver, small_er_graph, block_size=24)
        small_blocks = run(FloydWarshall2DSolver, small_er_graph, block_size=8)
        assert big_blocks.iterations == small_blocks.iterations == 48


class TestStorageExhaustion:
    # A per-executor local-storage budget chosen between the cumulative spill of
    # the Collect/Broadcast solver (~130 KB at n=96, b=8) and that of the
    # In-Memory solver (~750 KB): the same budget kills IM but not CB, exactly
    # the contrast the paper draws in Sections 4.5 and 5.2.
    STORAGE_BUDGET = 300_000

    def test_blocked_im_fails_when_local_storage_too_small(self, medium_er_graph):
        # Reproduces the paper's observation that IM runs out of local storage
        # when too much data is shuffled (Section 5.2 / Table 3).
        config = EngineConfig(num_executors=4, cores_per_executor=2,
                              local_storage_bytes=self.STORAGE_BUDGET)
        with pytest.raises(StorageExhaustedError):
            run(BlockedInMemorySolver, medium_er_graph, block_size=8, config=config)

    def test_blocked_cb_succeeds_under_same_budget(self, medium_er_graph, medium_er_reference):
        # CB avoids the shuffle volume, so the same budget suffices.
        config = EngineConfig(num_executors=4, cores_per_executor=2,
                              local_storage_bytes=self.STORAGE_BUDGET)
        result = run(BlockedCollectBroadcastSolver, medium_er_graph, block_size=8,
                     config=config)
        assert np.allclose(result.distances, medium_er_reference)

    def test_blocked_im_succeeds_with_larger_blocks(self, medium_er_graph, medium_er_reference):
        # Larger blocks -> fewer iterations -> less cumulative spill (Figure 3).
        config = EngineConfig(num_executors=4, cores_per_executor=2,
                              local_storage_bytes=2_000_000)
        result = run(BlockedInMemorySolver, medium_er_graph, block_size=48, config=config)
        assert np.allclose(result.distances, medium_er_reference)


class TestFaultTolerance:
    def test_pure_solver_survives_task_failures(self, small_er_graph, small_er_reference):
        config = EngineConfig(num_executors=4, cores_per_executor=2)
        plan = FaultPlan(fail_task_indices=frozenset({2, 9, 25, 60}))
        context = SparkContext(config, fault_plan=plan)
        solver = BlockedInMemorySolver(config=config,
                                       options=SolverOptions(block_size=12))
        result = solver.solve(small_er_graph, context=context)
        assert context.fault_injector.injected_failures > 0
        assert context.metrics.tasks_retried > 0
        context.stop()
        assert np.allclose(result.distances, small_er_reference)

    def test_fw2d_survives_task_failures(self, small_er_graph, small_er_reference):
        config = EngineConfig(num_executors=2, cores_per_executor=2)
        plan = FaultPlan(fail_task_indices=frozenset({5, 11}))
        context = SparkContext(config, fault_plan=plan)
        solver = FloydWarshall2DSolver(config=config, options=SolverOptions(block_size=16))
        result = solver.solve(small_er_graph, context=context)
        context.stop()
        assert np.allclose(result.distances, small_er_reference)

"""Auto-tuner: property tests over the request space plus end-to-end solves.

The hypothesis block drives :func:`repro.core.tuner.choose_config` with
random ``(n, algebra, dtype, directed, paths)`` draws and checks the three
contracts the docs promise: the choice is always registry-supported, never
predicted slower than the documented Blocked-CB default, and deterministic
for a fixed calibration document.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import graph_for_algebra
from repro.cluster import fitting
from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError
from repro.core import tuner
from repro.core.engine import APSPEngine
from repro.core.registry import solver_info, solvers_for
from repro.core.request import SolveRequest
from repro.linalg.algebra import available_algebras, get_algebra

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
CALIBRATION_PATH = os.path.join(REPO_ROOT, "benchmarks", "calibration.json")

CONSTANTS = fitting.load_calibration(CALIBRATION_PATH)["constants"]

#: Every registered algebra with the orientations its input domain admits
#: (longest path needs a DAG, hence directed-only).
ALGEBRA_ORIENTATIONS = [
    (name, directed)
    for name in available_algebras()
    for directed in ((True,) if name == "longest-path" else (False, True))
]


@st.composite
def auto_requests(draw):
    algebra_name, directed = draw(st.sampled_from(ALGEBRA_ORIENTATIONS))
    algebra = get_algebra(algebra_name)
    dtype = draw(st.sampled_from(algebra.dtypes))
    paths = draw(st.booleans()) if algebra.witness_select else False
    return SolveRequest(solver="auto", algebra=algebra_name, dtype=dtype,
                        directed=directed, paths=paths)


@st.composite
def tuning_cases(draw):
    request = draw(auto_requests())
    n = draw(st.integers(min_value=2, max_value=512))
    symmetric = not request.directed and draw(st.booleans())
    return request, n, symmetric


CONFIG = EngineConfig(backend="serial", num_executors=2, cores_per_executor=2)

hypothesis_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


class TestTunerProperties:
    @hypothesis_settings
    @given(tuning_cases())
    def test_choice_is_registry_supported(self, case):
        request, n, symmetric = case
        decision = tuner.choose_config(
            request, n=n, config=CONFIG, symmetric=symmetric,
            constants=CONSTANTS)
        supported = solvers_for(request.algebra, decision.layout)
        assert decision.solver in supported
        assert solver_info(decision.solver).supports_layout(decision.layout)
        assert decision.storage in get_algebra(request.algebra).storages
        assert 1 <= decision.block_size <= n
        assert decision.backend == CONFIG.backend
        assert decision.recommended_backend in ("serial", "threads",
                                                "processes")
        assert decision.predicted_seconds >= 0.0
        assert decision.candidates >= 1

    @hypothesis_settings
    @given(tuning_cases())
    def test_never_predicted_slower_than_default(self, case):
        request, n, symmetric = case
        decision = tuner.choose_config(
            request, n=n, config=CONFIG, symmetric=symmetric,
            constants=CONSTANTS)
        assert (decision.predicted_seconds
                <= decision.default_predicted_seconds)

    @hypothesis_settings
    @given(tuning_cases())
    def test_deterministic_for_fixed_calibration(self, case):
        request, n, symmetric = case
        first = tuner.choose_config(request, n=n, config=CONFIG,
                                    symmetric=symmetric, constants=CONSTANTS)
        second = tuner.choose_config(request, n=n, config=CONFIG,
                                     symmetric=symmetric, constants=CONSTANTS)
        assert first == second

    @hypothesis_settings
    @given(tuning_cases())
    def test_resolved_request_revalidates(self, case):
        """The rewritten request passes SolveRequest's own checks."""
        request, n, symmetric = case
        decision = tuner.choose_config(
            request, n=n, config=CONFIG, symmetric=symmetric,
            constants=CONSTANTS)
        resolved = SolveRequest(
            solver=decision.solver, algebra=request.algebra,
            dtype=request.dtype, storage=decision.storage,
            layout=decision.layout, directed=request.directed,
            paths=request.paths, block_size=decision.block_size)
        assert resolved.solver == decision.solver


class TestTunerEdges:
    def test_rejects_empty_problem(self):
        with pytest.raises(ConfigurationError, match="n=0"):
            tuner.choose_config(SolveRequest(solver="auto"), n=0,
                                constants=CONSTANTS)

    def test_explicit_block_size_is_honoured(self):
        request = SolveRequest(solver="auto", block_size=16)
        decision = tuner.choose_config(request, n=64, config=CONFIG,
                                       constants=CONSTANTS)
        assert decision.block_size == 16

    def test_explicit_storage_is_honoured(self):
        request = SolveRequest(solver="auto", algebra="reachability",
                               storage="dense")
        decision = tuner.choose_config(request, n=64, config=CONFIG,
                                       constants=CONSTANTS)
        # "dense" is non-default for reachability -> treated as a constraint.
        assert decision.storage == "dense"

    def test_asymmetric_input_forces_full_layout(self):
        request = SolveRequest(solver="auto", directed=True)
        decision = tuner.choose_config(request, n=32, config=CONFIG,
                                       symmetric=False, constants=CONSTANTS)
        assert decision.layout == "full"

    def test_paper_fallback_without_calibration(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv(tuner.CALIBRATION_ENV, raising=False)
        constants, source = tuner.active_calibration()
        assert source == "paper-default"
        decision = tuner.choose_config(
            SolveRequest(solver="auto"), n=48, config=CONFIG,
            constants=constants, calibration_source=source)
        assert decision.predicted_seconds >= 0.0

    def test_calibration_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "cal.json"
        doc = fitting.load_calibration(CALIBRATION_PATH)
        fitting.write_calibration(doc, str(target))
        monkeypatch.setenv(tuner.CALIBRATION_ENV, str(target))
        constants, source = tuner.active_calibration()
        assert source == str(target)
        assert constants == doc["constants"]


class TestAutoEndToEnd:
    @pytest.fixture(scope="class")
    def engine(self):
        config = EngineConfig(backend="serial", num_executors=2,
                              cores_per_executor=2)
        with APSPEngine(config) as engine:
            yield engine

    @pytest.mark.parametrize("algebra,directed", ALGEBRA_ORIENTATIONS)
    def test_auto_solves_every_algebra(self, engine, algebra, directed):
        adjacency = graph_for_algebra(40, seed=7, algebra=algebra,
                                      directed=directed)
        request = SolveRequest(solver="auto", algebra=algebra,
                               directed=directed)
        result = engine.solve(adjacency, request=request)
        tuned = result.metrics.get("tuner")
        assert tuned, "auto solve must record its tuner decision"
        assert tuned["solver"] in solvers_for(algebra, tuned["layout"])
        assert tuned["predicted_seconds"] >= 0.0
        assert result.distances.shape == (40, 40)

    def test_stats_expose_last_decision(self, engine):
        stats = engine.stats()
        assert stats["tuner"]["decisions"] >= 1
        assert "solver" in stats["tuner"]["last"]

    def test_auto_matches_explicit_solver_output(self, engine):
        """Tuning changes configuration, never the answer."""
        adjacency = graph_for_algebra(40, seed=11)
        auto = engine.solve(adjacency,
                            request=SolveRequest(solver="auto"))
        explicit = engine.solve(adjacency,
                                request=SolveRequest(solver="blocked-cb"))
        np.testing.assert_allclose(auto.distances, explicit.distances)

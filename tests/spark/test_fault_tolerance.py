"""Fault-tolerance tests: crash recovery, timeouts, speculation, backoff.

The acceptance surface of the robustness PR: a solve on the ``processes``
backend survives a *real* worker kill (``os._exit`` inside the pool, genuine
``BrokenProcessPool``) with bit-identical results and ``worker_restarts >= 1``;
in-process backends survive the simulated executor loss; stragglers are beaten
by speculative copies; a hard stage deadline fails fast with a diagnosable
:class:`TaskTimeoutError`; and every retry site draws its sleeps from the
shared deterministic backoff policy.
"""

import time

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.common.errors import SolverError, TaskTimeoutError, WorkerCrashError
from repro.common.retry import BackoffPolicy
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency
from repro.spark.context import SparkContext
from repro.spark.faults import FaultInjector, FaultPlan
from repro.spark.metrics import EngineMetrics
from repro.spark.scheduler import MIN_DERIVED_SOFT_TIMEOUT, TaskScheduler

N = 48
REQUEST = SolveRequest(solver="blocked-cb", block_size=16)


def _config(backend, **kwargs):
    return EngineConfig(backend=backend, num_executors=2, cores_per_executor=2,
                        **kwargs)


@pytest.fixture(scope="module")
def adjacency():
    return erdos_renyi_adjacency(N, seed=5)


@pytest.fixture(scope="module")
def clean_distances(adjacency):
    with APSPEngine(_config("serial")) as engine:
        return np.array(engine.solve(adjacency, REQUEST).distances, copy=True)


class TestWorkerCrashRecovery:
    def test_real_worker_kill_on_processes_backend(self, adjacency,
                                                   clean_distances):
        """A real worker death mid-solve: pool rebuilt, results bit-identical."""
        plan = FaultPlan(crash_task_indices={2})
        with APSPEngine(_config("processes"), fault_plan=plan) as engine:
            result = engine.solve(adjacency, REQUEST)
            metrics = engine.metrics
            injector = engine.context.fault_injector
        assert injector.injected_crashes == 1
        assert metrics["worker_restarts"] >= 1
        assert metrics["tasks_recomputed"] >= 1
        assert np.array_equal(result.distances, clean_distances)

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_simulated_crash_on_inprocess_backends(self, backend, adjacency,
                                                   clean_distances):
        plan = FaultPlan(crash_task_indices={1, 3})
        with APSPEngine(_config(backend), fault_plan=plan) as engine:
            result = engine.solve(adjacency, REQUEST)
            metrics = engine.metrics
        assert metrics["tasks_recomputed"] >= 2
        assert metrics["worker_restarts"] == 0  # no real pool to rebuild
        assert np.array_equal(result.distances, clean_distances)

    def test_second_crash_after_rebuild_also_recovers(self, adjacency,
                                                      clean_distances):
        # The two crash indices must land in *different* stages: concurrent
        # deaths within one pool generation collapse into a single rebuild
        # (by design), so a same-stage pair would flake on timing.  This
        # solve launches ~150 tasks in stages of <= ~9, so 1 and 100 are
        # guaranteed to be separated by a stage barrier (and a rebuild).
        plan = FaultPlan(crash_task_indices={1, 100})
        with APSPEngine(_config("processes"), fault_plan=plan) as engine:
            result = engine.solve(adjacency, REQUEST)
            metrics = engine.metrics
        assert metrics["worker_restarts"] >= 2
        assert np.array_equal(result.distances, clean_distances)

    def test_crash_error_is_retryable_not_fatal(self):
        metrics = EngineMetrics()
        scheduler = TaskScheduler(_config("serial"), metrics,
                                  FaultInjector(FaultPlan(crash_task_indices={0})))
        try:
            assert scheduler.run_stage("unit", [lambda: 7]) == [7]
        finally:
            scheduler.shutdown()
        snap = metrics.as_dict()
        assert snap["tasks_retried"] == 1
        assert snap["tasks_recomputed"] == 1


class TestBackoffIntegration:
    def test_scheduler_reseeds_zero_seed_policy_from_engine_seed(self):
        sched_a = TaskScheduler(_config("serial", seed=1), EngineMetrics())
        sched_b = TaskScheduler(_config("serial", seed=2), EngineMetrics())
        try:
            assert sched_a.retry.seed != 0
            assert sched_a.retry.seed != sched_b.retry.seed
        finally:
            sched_a.shutdown()
            sched_b.shutdown()

    def test_explicitly_seeded_policy_is_kept(self):
        config = _config("serial", retry=BackoffPolicy(seed=77))
        scheduler = TaskScheduler(config, EngineMetrics())
        try:
            assert scheduler.retry.seed == 77
        finally:
            scheduler.shutdown()

    def test_retries_actually_back_off(self):
        config = _config("serial", retry=BackoffPolicy(
            base_seconds=0.03, multiplier=1.0, max_seconds=0.03,
            jitter=0.0, seed=5))
        metrics = EngineMetrics()
        scheduler = TaskScheduler(config, metrics, FaultInjector(
            FaultPlan(fail_task_indices={0})))
        try:
            start = time.perf_counter()
            scheduler.run_stage("unit", [lambda: 1])
            elapsed = time.perf_counter() - start
        finally:
            scheduler.shutdown()
        assert elapsed >= 0.03  # one retry, one full backoff sleep
        assert metrics.as_dict()["tasks_retried"] == 1

    def test_task_exhausting_attempts_surfaces_solver_error(self):
        config = _config("serial", retry=BackoffPolicy(
            max_attempts=2, base_seconds=0.0, jitter=0.0, seed=5))
        scheduler = TaskScheduler(config, EngineMetrics())

        def always_fails():
            raise WorkerCrashError("executor gone")

        try:
            with pytest.raises(SolverError, match="failed 2 times"):
                scheduler.run_stage("unit", [always_fails])
        finally:
            scheduler.shutdown()


class TestTimeoutsAndSpeculation:
    def test_soft_timeout_explicit_config_wins(self):
        config = _config("threads", task_timeout_seconds=0.01)
        scheduler = TaskScheduler(config, EngineMetrics())
        try:
            with scheduler.task_wall_hint(5.0):
                assert scheduler._soft_timeout() == 0.01
        finally:
            scheduler.shutdown()

    def test_derived_soft_timeout_is_floored(self):
        scheduler = TaskScheduler(_config("threads"), EngineMetrics())
        try:
            assert scheduler._soft_timeout() is None
            with scheduler.task_wall_hint(1e-6):
                assert scheduler._soft_timeout() == MIN_DERIVED_SOFT_TIMEOUT
            with scheduler.task_wall_hint(10.0):
                assert scheduler._soft_timeout() == pytest.approx(
                    10.0 * scheduler.config.task_timeout_multiplier)
        finally:
            scheduler.shutdown()

    def test_straggler_loses_to_speculative_copy(self):
        """A delayed first execution trips the soft timeout; the copy wins."""
        config = _config("threads", task_timeout_seconds=0.05)
        metrics = EngineMetrics()
        plan = FaultPlan(delay_task_indices={0}, delay_seconds=1.0)
        scheduler = TaskScheduler(config, metrics, FaultInjector(plan))
        try:
            start = time.perf_counter()
            results = scheduler.run_stage("unit", [lambda: 11, lambda: 22])
            elapsed = time.perf_counter() - start
        finally:
            scheduler.shutdown()
        assert results == [11, 22]
        assert elapsed < 1.0  # did not wait out the straggler
        snap = metrics.as_dict()
        assert snap["speculative_launched"] >= 1
        assert snap["speculative_wins"] >= 1

    def test_speculation_disabled_waits_for_straggler(self):
        config = _config("threads", task_timeout_seconds=0.05,
                         speculation=False)
        metrics = EngineMetrics()
        plan = FaultPlan(delay_task_indices={0}, delay_seconds=0.3)
        scheduler = TaskScheduler(config, metrics, FaultInjector(plan))
        try:
            start = time.perf_counter()
            results = scheduler.run_stage("unit", [lambda: 1, lambda: 2])
            elapsed = time.perf_counter() - start
        finally:
            scheduler.shutdown()
        assert results == [1, 2]
        assert elapsed >= 0.3
        assert metrics.as_dict()["speculative_launched"] == 0

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_hard_stage_timeout_is_diagnosable(self, backend):
        config = _config(backend, stage_timeout_seconds=0.05)
        metrics = EngineMetrics()
        scheduler = TaskScheduler(config, metrics)

        def hang():
            time.sleep(0.4)
            return 1

        try:
            with pytest.raises(TaskTimeoutError) as excinfo:
                scheduler.run_stage("hung-stage", [hang, hang, hang])
        finally:
            scheduler.shutdown()
        err = excinfo.value
        assert err.stage_kind == "hung-stage"
        assert err.total == 3
        assert err.timeout_seconds == 0.05
        assert 0 <= err.completed < 3
        assert metrics.as_dict()["task_timeouts"] == 1

    def test_shutdown_after_abandonment_does_not_block(self):
        config = _config("threads", stage_timeout_seconds=0.05)
        scheduler = TaskScheduler(config, EngineMetrics())

        def hang():
            time.sleep(2.0)

        with pytest.raises(TaskTimeoutError):
            scheduler.run_stage("hung", [hang, hang])
        start = time.perf_counter()
        scheduler.shutdown()
        assert time.perf_counter() - start < 1.0

    def test_faulted_solve_with_timeouts_still_exact(self, adjacency,
                                                     clean_distances):
        """Timeout machinery armed + delays injected: results stay exact."""
        config = _config("threads", task_timeout_seconds=0.2,
                         stage_timeout_seconds=60.0)
        plan = FaultPlan(delay_task_indices={0}, delay_seconds=0.5)
        with APSPEngine(config, fault_plan=plan) as engine:
            result = engine.solve(adjacency, REQUEST)
        assert np.array_equal(result.distances, clean_distances)


class TestSchedulerLifecycle:
    def test_stop_reaps_all_pools(self):
        scheduler = TaskScheduler(_config("processes"), EngineMetrics())
        scheduler.run_stage("warm", [lambda: 1, lambda: 2])
        scheduler._speculation_pool()
        scheduler._process_pool()
        scheduler.shutdown()
        assert scheduler._pool is None
        assert scheduler._spec_pool is None
        assert scheduler._proc_pool is None

    def test_shutdown_is_idempotent(self):
        scheduler = TaskScheduler(_config("threads"), EngineMetrics())
        scheduler.shutdown()
        scheduler.shutdown()

    def test_context_cleans_sharedfs_tempdir_after_failed_stage(self):
        """A mid-stage failure must not leak the shared-fs staging dir."""
        import os
        plan = FaultPlan(fail_task_indices={0}, max_failures=1 << 30)
        config = _config("serial", retry=BackoffPolicy(
            max_attempts=1, base_seconds=0.0, jitter=0.0, seed=3))
        sc = SparkContext(config, plan)
        root = sc.shared_fs.root
        with pytest.raises(SolverError):
            sc.scheduler.run_stage("doomed", [lambda: 1])
        sc.stop()
        assert not os.path.isdir(root)

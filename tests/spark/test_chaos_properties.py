"""Property-based chaos tests: seeded fault schedules never change answers.

Hypothesis drives :func:`repro.experiments.chaos.run_chaos` across random
fault mixes (task failures, executor crashes, staging corruption/drops,
delays), backends, and solvers.  Every combination must be **bit-identical**
to its fault-free twin, end degraded-free, and leave recovery counters that
reconcile with what was injected.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.chaos import build_fault_plan, run_chaos

# Small enough for many hypothesis examples, large enough that the blocked
# solvers run real multi-task stages where faults can actually land.
N = 32


def _run(seed, *, backend="threads", solver="blocked-cb", **plan_kwargs):
    plan = build_fault_plan(seed, **plan_kwargs)
    return run_chaos(n=N, seed=seed, solver=solver, backend=backend,
                     block_size=8, executors=2, cores=2, fault_plan=plan,
                     update_batches=1, edges_per_batch=3, queries=8)


class TestChaosExactness:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000),
           failures=st.integers(0, 3),
           crashes=st.integers(0, 2),
           backend=st.sampled_from(["serial", "threads"]))
    def test_task_faults_never_change_answers(self, seed, failures, crashes,
                                              backend):
        report = _run(seed, backend=backend, failures=failures,
                      crashes=crashes)
        assert report.exact
        assert report.solve_exact and report.updates_exact
        assert report.queries_exact and report.failed_queries == 0
        assert report.degraded is False
        # Reconciliation: every fault that fired was retried at least once
        # (simulated crashes on in-process backends surface as retryable;
        # ``injected_failures`` is the total across kinds, crashes included).
        assert report.recovered["tasks_retried"] >= \
            report.injected["injected_failures"]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000),
           corrupt=st.integers(0, 2),
           drop=st.integers(0, 2))
    def test_staging_faults_never_change_answers(self, seed, corrupt, drop):
        report = _run(seed, corrupt_writes=corrupt, drop_writes=drop)
        assert report.exact
        injected = (report.injected["corrupted_writes"]
                    + report.injected["dropped_writes"])
        if injected == 0:
            assert report.recovered["sharedfs_integrity_failures"] == 0
            assert report.recovered["sharedfs_restages"] == 0
        else:
            # Several concurrent readers may each *detect* the same bad
            # block (one integrity-failure tick apiece), but repairs are
            # serialized and bounded by the per-name restage limit.
            assert report.recovered["sharedfs_restages"] <= 3 * injected

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000),
           solver=st.sampled_from(["blocked-cb", "blocked-im", "fw-2d"]),
           failures=st.integers(0, 2))
    def test_every_solver_survives_task_failures(self, seed, solver, failures):
        report = _run(seed, solver=solver, failures=failures, crashes=1)
        assert report.exact
        assert report.degraded is False

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000),
           rate=st.floats(0.01, 0.2))
    def test_failure_rate_schedules_stay_exact(self, seed, rate):
        report = _run(seed, failure_rate=rate)
        assert report.exact
        assert report.recovered["tasks_retried"] >= \
            report.injected["injected_failures"]


class TestChaosReproducibility:
    def test_same_seed_same_schedule_same_counters(self):
        """The ``apspark chaos --seed S`` contract: reruns are identical."""
        kwargs = dict(failures=2, crashes=1, corrupt_writes=1, drop_writes=1)
        first = _run(4321, **kwargs)
        second = _run(4321, **kwargs)
        assert first.exact and second.exact
        assert first.injected == second.injected
        assert first.recovered == second.recovered

    def test_different_seeds_draw_different_schedules(self):
        plans = {build_fault_plan(s, failures=3, crashes=2).fail_task_indices
                 for s in range(6)}
        assert len(plans) > 1

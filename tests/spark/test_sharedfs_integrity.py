"""Staging-integrity tests: atomic writes, checksums, bounded re-staging.

The impure channel of the paper (shared-fs block staging) hardened: every
write is atomic (temp + fsync + rename) and checksummed; readers detect
corruption and missing files and repair them from the driver's bounded
lineage registry; worker copies escalate to the driver via
:class:`StagingError`; only a genuinely unrecoverable loss surfaces the
paper's :class:`LineageError` caveat.
"""

import os
import pickle

import numpy as np
import pytest

from repro.common.errors import LineageError, StagingError
from repro.spark.faults import FaultInjector, FaultPlan
from repro.spark.metrics import EngineMetrics
from repro.spark.sharedfs import _FOOTER, _MAGIC, SharedFileSystem


@pytest.fixture
def fs(tmp_path):
    return SharedFileSystem(str(tmp_path), metrics=EngineMetrics())


def _corrupt(path):
    with open(path, "r+b") as fh:
        head = fh.read(8)
        fh.seek(0)
        fh.write(bytes(b ^ 0xFF for b in head))


class TestFooterAndAtomicity:
    def test_roundtrip_with_footer(self, fs):
        value = np.arange(12.0).reshape(3, 4)
        path = fs.write("block", value)
        with open(path, "rb") as fh:
            data = fh.read()
        crc, length, magic = _FOOTER.unpack(data[-_FOOTER.size:])
        assert magic == _MAGIC
        assert length == len(data) - _FOOTER.size
        np.testing.assert_array_equal(fs.read("block"), value)

    def test_no_temp_files_left_behind(self, fs):
        for i in range(5):
            fs.write(f"b{i}", np.ones(4))
        leftovers = [f for f in os.listdir(fs.root) if ".tmp-" in f]
        assert leftovers == []

    def test_byte_accounting_excludes_footer(self, fs):
        value = np.arange(6.0)
        fs.write("acct", value)
        payload = len(pickle.dumps(("ndarray", value),
                                   protocol=pickle.HIGHEST_PROTOCOL))
        assert fs.metrics.as_dict()["sharedfs_bytes_written"] == payload


class TestCorruptionDetectionAndRestage:
    def test_corrupt_block_detected_and_restaged(self, fs):
        value = np.arange(8.0)
        path = fs.write("blk", value)
        _corrupt(path)
        np.testing.assert_array_equal(fs.read("blk"), value)
        snap = fs.metrics.as_dict()
        assert snap["sharedfs_integrity_failures"] == 1
        assert snap["sharedfs_restages"] == 1

    def test_missing_block_restaged(self, fs):
        value = np.full(4, 7.0)
        path = fs.write("gone", value)
        os.remove(path)
        np.testing.assert_array_equal(fs.read("gone"), value)
        assert fs.metrics.as_dict()["sharedfs_restages"] == 1

    def test_truncated_block_detected(self, fs):
        path = fs.write("short", np.arange(64.0))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        np.testing.assert_array_equal(fs.read("short"), np.arange(64.0))

    def test_restage_is_bounded_per_name(self, tmp_path):
        fs = SharedFileSystem(str(tmp_path), metrics=EngineMetrics(),
                              restage_limit=2)
        path = fs.write("flaky", np.ones(3))
        for _ in range(2):
            os.remove(path)
            fs.read("flaky")  # repaired
        os.remove(path)
        with pytest.raises(LineageError):
            fs.read("flaky")  # third loss exceeds the bound

    def test_restage_after_concurrent_repair_costs_nothing(self, fs):
        """A reader arriving after the block was repaired consumes no attempt."""
        path = fs.write("shared", np.arange(4.0))
        _corrupt(path)
        assert fs.restage(path) is True       # actual repair
        for _ in range(10):                   # block is valid: all free
            assert fs.restage(path) is True
        assert fs.metrics.as_dict()["sharedfs_restages"] == 1

    def test_lineage_registry_is_bounded(self, tmp_path):
        fs = SharedFileSystem(str(tmp_path), metrics=EngineMetrics(),
                              lineage_limit=2)
        paths = [fs.write(f"b{i}", np.full(2, float(i))) for i in range(4)]
        os.remove(paths[0])
        with pytest.raises(LineageError):
            fs.read("b0")  # evicted from the bounded registry
        os.remove(paths[3])
        np.testing.assert_array_equal(fs.read("b3"), np.full(2, 3.0))


class TestUnrecoverableLoss:
    def test_drop_removes_lineage_so_read_raises_lineage_error(self, fs):
        fs.write("victim", np.ones(4))
        fs.drop("victim")
        with pytest.raises(LineageError):
            fs.read("victim")

    def test_worker_copy_raises_staging_error_for_driver_repair(self, fs):
        value = np.arange(5.0)
        path = fs.write("wblk", value)
        worker = pickle.loads(pickle.dumps(fs))
        assert worker._worker is True
        np.testing.assert_array_equal(worker.read("wblk"), value)
        os.remove(path)
        with pytest.raises(StagingError) as excinfo:
            worker.read("wblk")
        # Driver-side repair: the name travels in the exception.
        assert fs.restage(excinfo.value.name) is True
        np.testing.assert_array_equal(worker.read("wblk"), value)


class TestWriteFaultInjection:
    def test_corrupt_write_fault_applies_and_recovers(self, tmp_path):
        inj = FaultInjector(FaultPlan(corrupt_write_indices={0}))
        fs = SharedFileSystem(str(tmp_path), metrics=EngineMetrics(),
                              fault_injector=inj)
        value = np.arange(4.0)
        fs.write("c", value)
        np.testing.assert_array_equal(fs.read("c"), value)
        assert inj.counters()["corrupted_writes"] == 1
        assert fs.metrics.as_dict()["sharedfs_integrity_failures"] == 1

    def test_drop_write_fault_applies_and_recovers(self, tmp_path):
        inj = FaultInjector(FaultPlan(drop_write_indices={1}))
        fs = SharedFileSystem(str(tmp_path), metrics=EngineMetrics(),
                              fault_injector=inj)
        fs.write("a", np.ones(2))
        path_b = fs.write("b", np.full(2, 2.0))
        assert not os.path.exists(path_b)
        np.testing.assert_array_equal(fs.read("b"), np.full(2, 2.0))
        assert inj.counters()["dropped_writes"] == 1


class TestMaintenance:
    def test_clear_resets_everything(self, fs):
        fs.write("x", np.ones(2))
        fs.read("x")
        fs.clear()
        assert [f for f in os.listdir(fs.root) if f.endswith(".blk")] == []
        with pytest.raises(LineageError):
            fs.read("x")

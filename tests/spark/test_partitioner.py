"""Tests for the RDD partitioners (PH, MD, GRID) — Section 5.3 / Figure 4."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.linalg.blocks import upper_triangular_block_ids
from repro.spark.partitioner import (
    GridPartitioner,
    MultiDiagonalPartitioner,
    Partitioner,
    PortableHashPartitioner,
    partitioner_by_name,
    portable_hash,
)


class TestPortableHash:
    def test_none_is_zero(self):
        assert portable_hash(None) == 0

    def test_deterministic(self):
        assert portable_hash((3, 7)) == portable_hash((3, 7))

    def test_tuple_order_matters(self):
        assert portable_hash((1, 2)) != portable_hash((2, 1))

    def test_matches_pyspark_algorithm(self):
        # Reference value computed by hand with the published pySpark algorithm.
        h = 0x345678
        for item in (2, 5):
            h ^= item
            h *= 1000003
            h &= __import__("sys").maxsize
        h ^= 2
        assert portable_hash((2, 5)) == h

    def test_collisions_on_upper_triangular_keys(self):
        # The paper observes that portable_hash produces many collisions on
        # upper-triangular (I, J) keys, skewing partitions.  This is the
        # paper's Figure 3 configuration (n=131072, b=1024 -> q=128, B=2).
        keys = list(upper_triangular_block_ids(128))
        partitioner = PortableHashPartitioner(2048)
        counts = partitioner.distribution(keys)
        # Skew: the heaviest partition carries noticeably more than the mean.
        assert counts.max() > 1.3 * counts.mean()


class TestPortableHashPartitioner:
    def test_range(self):
        p = PortableHashPartitioner(8)
        for key in upper_triangular_block_ids(10):
            assert 0 <= p(key) < 8

    def test_equality(self):
        assert PortableHashPartitioner(4) == PortableHashPartitioner(4)
        assert PortableHashPartitioner(4) != PortableHashPartitioner(8)

    def test_invalid_partition_count(self):
        with pytest.raises(Exception):
            PortableHashPartitioner(0)


class TestMultiDiagonalPartitioner:
    def test_balanced_distribution(self):
        q, parts = 16, 8
        md = MultiDiagonalPartitioner(parts, q)
        counts = md.distribution(upper_triangular_block_ids(q))
        # Near-perfect balance: sizes differ by at most 1.
        assert counts.max() - counts.min() <= 1

    def test_balance_beats_portable_hash(self):
        q, parts = 64, 128
        keys = list(upper_triangular_block_ids(q))
        md_counts = MultiDiagonalPartitioner(parts, q).distribution(keys)
        ph_counts = PortableHashPartitioner(parts).distribution(keys)
        assert md_counts.std() < ph_counts.std()

    def test_symmetric_keys_colocate(self):
        md = MultiDiagonalPartitioner(6, 8)
        assert md((2, 5)) == md((5, 2))

    def test_row_spread(self):
        # Blocks of the same block-row should be spread over many partitions.
        q, parts = 12, 12
        md = MultiDiagonalPartitioner(parts, q)
        row0 = {md((0, j)) for j in range(q)}
        assert len(row0) >= parts // 2

    def test_layout_matches_partition_function(self):
        md = MultiDiagonalPartitioner(4, 6)
        layout = md.layout()
        for i in range(6):
            for j in range(6):
                assert layout[i, j] == md((i, j))

    def test_layout_symmetric(self):
        layout = MultiDiagonalPartitioner(4, 8).layout()
        assert np.array_equal(layout, layout.T)

    def test_diagonal_walk_round_robin(self):
        md = MultiDiagonalPartitioner(4, 8)
        # Main diagonal is dealt 0,1,2,3,0,1,...
        assert [md((i, i)) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_non_block_keys_fall_back_to_hash(self):
        md = MultiDiagonalPartitioner(4, 4)
        assert 0 <= md("some-key") < 4

    def test_out_of_grid_keys_fall_back(self):
        md = MultiDiagonalPartitioner(4, 4)
        assert 0 <= md((100, 200)) < 4

    def test_equality_includes_q(self):
        assert MultiDiagonalPartitioner(4, 8) == MultiDiagonalPartitioner(4, 8)
        assert MultiDiagonalPartitioner(4, 8) != MultiDiagonalPartitioner(4, 9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 64))
    def test_property_balance(self, q, parts):
        md = MultiDiagonalPartitioner(parts, q)
        counts = md.distribution(upper_triangular_block_ids(q))
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == q * (q + 1) // 2


class TestGridPartitioner:
    def test_range(self):
        g = GridPartitioner(6)
        for key in upper_triangular_block_ids(8):
            assert 0 <= g(key) < 6

    def test_grid_shape_factorization(self):
        g = GridPartitioner(12)
        assert g.rows * g.cols == 12

    def test_non_tuple_key(self):
        assert 0 <= GridPartitioner(5)("x") < 5


class TestPartitionerByName:
    @pytest.mark.parametrize("name,cls", [
        ("PH", PortableHashPartitioner), ("md", MultiDiagonalPartitioner),
        ("hash", PortableHashPartitioner), ("grid", GridPartitioner),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(partitioner_by_name(name, 4, 8), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            partitioner_by_name("random", 4, 8)


class TestBasePartitioner:
    def test_out_of_range_result_rejected(self):
        class Bad(Partitioner):
            def partition(self, key):
                return self.num_partitions  # off by one

        with pytest.raises(ConfigurationError):
            Bad(4)((0, 0))

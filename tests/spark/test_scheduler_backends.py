"""Scheduler backend tests: serial / threads / processes equivalence and safety.

Covers the satellite guarantees of the benchmark PR: identical stage results
across backends, retry-then-succeed under fault injection on every backend,
exception-safe future collection (a raising task no longer abandons its
siblings), idempotent shutdown, and the remote-payload machinery (worker
processes, metric deltas, pickle fallbacks).
"""

import os
import threading

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.common.errors import SolverError
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency
from repro.sequential.floyd_warshall import floyd_warshall_reference
from repro.spark.context import SparkContext
from repro.spark.faults import FaultInjector, FaultPlan
from repro.spark.metrics import EngineMetrics
from repro.spark.remote import RemoteTask, is_picklable, pack_payload, run_remote
from repro.spark.scheduler import TaskScheduler

BACKENDS = ("serial", "threads", "processes")


def _config(backend):
    return EngineConfig(backend=backend, num_executors=2, cores_per_executor=2)


@pytest.fixture(scope="module")
def process_context():
    """One shared processes-backend context (worker pools are expensive to spawn)."""
    with SparkContext(_config("processes")) as sc:
        yield sc


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_reduce_stage_results_match_serial(self, backend):
        data = [(i % 5, i) for i in range(40)]
        with SparkContext(_config(backend)) as sc:
            got = dict(sc.parallelize(data, num_partitions=4)
                       .reduceByKey(lambda a, b: a + b).collect())
        expected: dict = {}
        for key, value in data:
            expected[key] = expected.get(key, 0) + value
        assert got == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_blocked_cb_matches_reference(self, backend):
        adjacency = erdos_renyi_adjacency(64, seed=11)
        reference = floyd_warshall_reference(adjacency)
        with APSPEngine(_config(backend)) as engine:
            result = engine.solve(adjacency,
                                  SolveRequest(solver="blocked-cb", block_size=16))
        assert np.allclose(result.distances, reference)

    def test_processes_backend_matches_serial_on_128_nodes(self):
        # Acceptance criterion: EngineConfig(backend="processes") solves match
        # the serial reference on a 128-node graph.
        adjacency = erdos_renyi_adjacency(128, seed=1234)
        request = SolveRequest(solver="blocked-cb", block_size=32)
        with APSPEngine(_config("serial")) as engine:
            serial = engine.solve(adjacency, request)
        with APSPEngine(_config("processes")) as engine:
            processes = engine.solve(adjacency, request)
        assert np.allclose(serial.distances, processes.distances)
        assert np.allclose(serial.distances, floyd_warshall_reference(adjacency))
        # Worker-side shared-fs reads must flow back into the driver's delta.
        assert processes.metrics["sharedfs_bytes_read"] == \
            serial.metrics["sharedfs_bytes_read"]


class TestFaultRetry:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retry_then_succeed(self, backend):
        plan = FaultPlan(fail_task_indices=frozenset({1, 3}))
        with SparkContext(_config(backend), fault_plan=plan) as sc:
            result = sorted(sc.parallelize(list(range(20)), num_partitions=5)
                            .map(lambda x: x * 2).collect())
            assert result == [2 * i for i in range(20)]
            assert sc.metrics.tasks_retried == 2
            assert sc.metrics.tasks_failed == 2


class TestExceptionSafety:
    def test_raising_task_does_not_abandon_siblings(self):
        scheduler = TaskScheduler(_config("threads"), EngineMetrics(), FaultInjector())
        finished = []
        barrier = threading.Event()

        def slow_ok(i):
            def task():
                barrier.wait(timeout=5)
                finished.append(i)
                return i
            return task

        def fails_fast():
            barrier.set()
            raise ValueError("boom")

        tasks = [fails_fast] + [slow_ok(i) for i in range(1, 4)]
        with pytest.raises(ValueError):
            scheduler.run_stage("test", tasks)
        # All sibling futures were gathered before the error was re-raised.
        assert sorted(finished) == [1, 2, 3]
        # The pool is still healthy for the next stage.
        assert scheduler.run_stage("test", [lambda: 7, lambda: 8]) == [7, 8]
        scheduler.shutdown()

    def test_first_error_wins_and_stage_is_recorded(self):
        metrics = EngineMetrics()
        scheduler = TaskScheduler(_config("threads"), metrics, FaultInjector())

        def fail(msg):
            def task():
                raise RuntimeError(msg)
            return task

        with pytest.raises(RuntimeError, match="first"):
            scheduler.run_stage("test", [fail("first"), fail("second")])
        # The failing stage still shows up in the metrics.
        assert len(metrics.stages) == 1
        scheduler.shutdown()


class TestShutdown:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shutdown_idempotent(self, backend):
        scheduler = TaskScheduler(_config(backend), EngineMetrics(), FaultInjector())
        assert scheduler.run_stage("test", [lambda: 1]) == [1]
        scheduler.shutdown()
        scheduler.shutdown()  # second call must be a no-op

    def test_context_stop_idempotent_with_processes(self):
        sc = SparkContext(_config("processes"))
        sc.parallelize([1, 2, 3]).collect()
        sc.stop()
        sc.stop()


class TestRemoteExecution:
    def test_remote_task_runs_in_worker_process(self, process_context):
        tasks = [RemoteTask(os.getpid) for _ in range(2)]
        pids = process_context.scheduler.run_stage("test", tasks)
        assert all(pid != os.getpid() for pid in pids)

    def test_remote_task_post_runs_driver_side(self, process_context):
        seen = []
        task = RemoteTask(os.getpid, post=lambda pid: seen.append(os.getpid()) or pid)
        [pid] = process_context.scheduler.run_stage("test", [task])
        assert pid != os.getpid()
        assert seen == [os.getpid()]

    def test_unpicklable_tasks_fall_back_to_driver(self, process_context):
        captured = object()  # closures over arbitrary state cannot be shipped
        results = process_context.scheduler.run_stage(
            "test", [lambda: id(captured), lambda: 42])
        assert results[1] == 42

    def test_remote_task_local_call(self):
        # Under serial/threads backends a RemoteTask is just a callable.
        task = RemoteTask(max, (3, 5), post=lambda r: r * 10)
        assert task() == 50

    def test_run_remote_returns_metrics_delta(self):
        result, delta = run_remote(max, 1, 2)
        assert result == 2
        assert delta["sharedfs_bytes_read"] == 0

    def test_is_picklable(self):
        assert is_picklable(max)
        assert not is_picklable(lambda: 0)

    def test_pack_payload_rejects_unpicklable_args(self):
        assert pack_payload(max, (1, 2)) is not None
        assert pack_payload(max, (threading.Lock(),)) is None

    def test_unpicklable_records_fall_back_to_driver(self, process_context):
        # The adapter (id) pickles, but the records do not; the stage must
        # run driver-side instead of crashing the worker feed.
        rdd = process_context.parallelize([threading.Lock(), threading.Lock()],
                                          num_partitions=2).map(id)
        results = rdd.collect()
        assert len(results) == 2 and all(isinstance(r, int) for r in results)

    def test_persisted_rdd_cache_filled_from_remote_results(self, process_context):
        rdd = process_context.parallelize(list(range(16)), num_partitions=4) \
            .map(abs).cache()
        rdd.collect()
        # abs is picklable, so partitions were computed remotely; the driver
        # must still have backfilled the persistence cache.
        assert rdd.is_cached()
        assert len(rdd._cache) == 4
        assert process_context.metrics.cached_partitions >= 4


class TestSpawnMainSanitizer:
    def test_pseudo_main_file_cleared(self, monkeypatch):
        # A heredoc/pipe-driven interpreter has __main__.__file__ == "<stdin>",
        # which would make spawn/forkserver children crash re-running it.
        import sys
        from repro.spark.scheduler import _sanitize_main_for_spawn
        main = sys.modules["__main__"]
        monkeypatch.setattr(main, "__file__", "<stdin>", raising=False)
        _sanitize_main_for_spawn()
        assert main.__file__ is None

    def test_real_main_file_untouched(self, monkeypatch):
        import sys
        from repro.spark.scheduler import _sanitize_main_for_spawn
        main = sys.modules["__main__"]
        monkeypatch.setattr(main, "__file__", __file__, raising=False)
        _sanitize_main_for_spawn()
        assert main.__file__ == __file__


class TestSolverFallbacks:
    def test_pure_shuffle_solver_correct_under_processes(self, process_context):
        # blocked-im's copy/pair closures are not picklable; the processes
        # backend must transparently run them on the driver's thread pool.
        adjacency = erdos_renyi_adjacency(48, seed=5)
        with APSPEngine(_config("processes")) as engine:
            result = engine.solve(adjacency,
                                  SolveRequest(solver="blocked-im", block_size=12))
        assert np.allclose(result.distances, floyd_warshall_reference(adjacency))

    def test_task_failure_surfaces_under_processes(self, process_context):
        def boom():
            raise SolverError("intentional")

        with pytest.raises(SolverError, match="intentional"):
            process_context.scheduler.run_stage("test", [boom, lambda: 1])

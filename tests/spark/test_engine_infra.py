"""Tests for the engine infrastructure: shuffle spills, shared FS, broadcast, faults, metrics."""

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.common.errors import FaultInjectedError, LineageError, SolverError, StorageExhaustedError
from repro.spark.broadcast import Broadcast
from repro.spark.context import SparkContext
from repro.spark.faults import FaultInjector, FaultPlan
from repro.spark.metrics import EngineMetrics
from repro.spark.scheduler import TaskScheduler, MAX_TASK_ATTEMPTS
from repro.spark.sharedfs import SharedFileSystem
from repro.spark.shuffle import ShuffleManager
from repro.spark.util import estimate_size, record_key


class TestEstimateSize:
    def test_ndarray_uses_nbytes(self):
        assert estimate_size(np.zeros((10, 10))) == 800

    def test_tuple_sums_members(self):
        assert estimate_size(((0, 1), np.zeros(10))) >= 80

    def test_scalars(self):
        assert estimate_size(3) == 8
        assert estimate_size(3.5) == 8

    def test_strings_and_bytes(self):
        assert estimate_size("abcd") == 4
        assert estimate_size(b"abcd") == 4

    def test_dict(self):
        assert estimate_size({"a": 1}) > 0

    def test_none(self):
        assert estimate_size(None) == 1

    def test_arbitrary_object_falls_back_to_pickle(self):
        class Thing:
            pass
        assert estimate_size(Thing()) > 0


class TestRecordKey:
    def test_pair(self):
        assert record_key(("k", 1)) == "k"

    def test_non_pair_raises(self):
        with pytest.raises(TypeError):
            record_key(42)


class TestMetrics:
    def test_counters_accumulate(self):
        m = EngineMetrics()
        m.task_launched(3)
        m.shuffle_started()
        m.shuffle_write(0, records=5, nbytes=100)
        m.shuffle_write(1, records=2, nbytes=50)
        m.collect_performed(10)
        m.broadcast_performed(20)
        m.sharedfs_written(30)
        m.sharedfs_read(40)
        d = m.as_dict()
        assert d["tasks_launched"] == 3
        assert d["shuffle_records"] == 7
        assert d["shuffle_bytes"] == 150
        assert d["spilled_bytes_per_executor"] == {0: 100, 1: 50}
        assert m.max_spilled_bytes() == 100
        assert m.total_spilled_bytes == 150
        assert d["collect_bytes"] == 10
        assert d["broadcast_bytes"] == 20
        assert d["sharedfs_bytes_written"] == 30
        assert d["sharedfs_bytes_read"] == 40

    def test_reset(self):
        m = EngineMetrics()
        m.task_launched()
        m.reset()
        assert m.as_dict()["tasks_launched"] == 0

    def test_stage_records(self):
        m = EngineMetrics()
        m.stage_finished(1, "result", 4, 0.5)
        assert len(m.stages) == 1
        assert m.stages[0].kind == "result"


class TestShuffleManager:
    def _config(self, capacity=None):
        return EngineConfig(num_executors=2, cores_per_executor=1,
                            local_storage_bytes=capacity)

    def test_write_and_read_round_trip(self):
        manager = ShuffleManager(self._config(), EngineMetrics())
        sid = manager.new_shuffle()
        manager.write_map_output(sid, 0, {0: [("a", 1)], 1: [("b", 2)]})
        manager.write_map_output(sid, 1, {0: [("c", 3)]})
        assert manager.read_reduce_input(sid, 0) == [("a", 1), ("c", 3)]
        assert manager.read_reduce_input(sid, 1) == [("b", 2)]

    def test_spill_accounting_per_executor(self):
        metrics = EngineMetrics()
        manager = ShuffleManager(self._config(), metrics)
        sid = manager.new_shuffle()
        manager.write_map_output(sid, 0, {0: [np.zeros(100)]})
        manager.write_map_output(sid, 1, {0: [np.zeros(50)]})
        spills = manager.spilled_bytes()
        assert spills[0] == 800 and spills[1] == 400

    def test_capacity_exceeded_raises(self):
        # The Blocked In-Memory failure mode of Section 5.2.
        manager = ShuffleManager(self._config(capacity=1000), EngineMetrics())
        sid = manager.new_shuffle()
        manager.write_map_output(sid, 0, {0: [np.zeros(100)]})   # 800 bytes, fits
        with pytest.raises(StorageExhaustedError) as exc:
            manager.write_map_output(sid, 2, {0: [np.zeros(100)]})  # same executor 0, 1600 > 1000
        assert exc.value.node == 0
        assert exc.value.capacity_bytes == 1000

    def test_capacity_disabled_when_none(self):
        manager = ShuffleManager(self._config(capacity=None), EngineMetrics())
        sid = manager.new_shuffle()
        for i in range(10):
            manager.write_map_output(sid, 0, {0: [np.zeros(1000)]})

    def test_spills_accumulate_across_shuffles(self):
        # Spill volume is cumulative over the application lifetime (kept for
        # fault tolerance), which is why it grows linearly with iterations.
        metrics = EngineMetrics()
        manager = ShuffleManager(self._config(), metrics)
        for _ in range(3):
            sid = manager.new_shuffle()
            manager.write_map_output(sid, 0, {0: [np.zeros(10)]})
            manager.release(sid)
        assert metrics.spilled_bytes_per_executor[0] == 3 * 80

    def test_release_frees_data_but_keeps_accounting(self):
        metrics = EngineMetrics()
        manager = ShuffleManager(self._config(), metrics)
        sid = manager.new_shuffle()
        manager.write_map_output(sid, 0, {0: [("a", 1)]})
        manager.release(sid)
        assert manager.read_reduce_input(sid, 0) == []
        assert metrics.shuffle_records == 1


class TestSharedFileSystem:
    def test_write_read_ndarray(self, tmp_path):
        fs = SharedFileSystem(str(tmp_path))
        block = np.arange(12.0).reshape(3, 4)
        path = fs.write("block-0", block)
        assert np.array_equal(fs.read(path), block)
        assert np.array_equal(fs.read("block-0"), block)

    def test_write_read_generic_object(self, tmp_path):
        fs = SharedFileSystem(str(tmp_path))
        fs.write("meta", {"q": 4})
        assert fs.read("meta") == {"q": 4}

    def test_write_blocks_helper(self, tmp_path):
        fs = SharedFileSystem(str(tmp_path))
        paths = fs.write_blocks("col0", {0: np.zeros(3), 1: np.ones(3)})
        assert set(paths) == {0, 1}
        assert np.array_equal(fs.read(paths[1]), np.ones(3))

    def test_metrics_accounting(self, tmp_path):
        metrics = EngineMetrics()
        fs = SharedFileSystem(str(tmp_path), metrics)
        path = fs.write("x", np.zeros(100))
        fs.read(path)
        assert metrics.sharedfs_files_written == 1
        assert metrics.sharedfs_bytes_written > 800
        assert metrics.sharedfs_bytes_read > 800

    def test_missing_object_raises_lineage_error(self, tmp_path):
        fs = SharedFileSystem(str(tmp_path))
        path = fs.write("x", np.zeros(2))
        fs.drop(path)
        with pytest.raises(LineageError):
            fs.read(path)

    def test_exists_and_clear(self, tmp_path):
        fs = SharedFileSystem(str(tmp_path))
        path = fs.write("x", np.zeros(2))
        assert fs.exists(path)
        fs.clear()
        assert not fs.exists(path)


class TestBroadcast:
    def test_value_accessible(self):
        b = Broadcast([1, 2, 3])
        assert b.value == [1, 2, 3]

    def test_destroy(self):
        b = Broadcast("x")
        b.destroy()
        with pytest.raises(RuntimeError):
            _ = b.value

    def test_traffic_accounted_per_executor(self):
        metrics = EngineMetrics()
        Broadcast(np.zeros(100), metrics=metrics, num_executors=4)
        assert metrics.broadcast_bytes == 4 * 800

    def test_context_broadcast(self, spark_context):
        b = spark_context.broadcast(np.arange(5))
        assert np.array_equal(b.value, np.arange(5))
        assert spark_context.metrics.broadcast_count == 1


class TestFaultInjection:
    def test_planned_task_fails_once(self):
        injector = FaultInjector(FaultPlan(fail_task_indices=frozenset({0})))
        tid = injector.next_task_id()
        with pytest.raises(FaultInjectedError):
            injector.maybe_fail(tid, attempt=0)
        injector.maybe_fail(tid, attempt=1)  # retry succeeds
        assert injector.injected_failures == 1

    def test_max_failures_respected(self):
        injector = FaultInjector(FaultPlan(failure_rate=1.0, max_failures=2))
        failures = 0
        for _ in range(10):
            tid = injector.next_task_id()
            try:
                injector.maybe_fail(tid, attempt=0)
            except FaultInjectedError:
                failures += 1
        assert failures == 2

    def test_scheduler_retries_failed_tasks(self):
        config = EngineConfig()
        metrics = EngineMetrics()
        injector = FaultInjector(FaultPlan(fail_task_indices=frozenset({0, 1})))
        scheduler = TaskScheduler(config, metrics, injector)
        results = scheduler.run_stage("test", [lambda: 1, lambda: 2, lambda: 3])
        assert results == [1, 2, 3]
        assert metrics.tasks_failed == 2
        assert metrics.tasks_retried == 2
        scheduler.shutdown()

    def test_scheduler_gives_up_after_max_attempts(self):
        config = EngineConfig()
        scheduler = TaskScheduler(config, EngineMetrics(), FaultInjector())

        def always_fails():
            raise FaultInjectedError("boom")

        with pytest.raises(SolverError):
            scheduler.run_stage("test", [always_fails])
        scheduler.shutdown()

    def test_max_attempts_constant(self):
        assert MAX_TASK_ATTEMPTS == 4

    def test_end_to_end_job_with_faults(self):
        plan = FaultPlan(fail_task_indices=frozenset({1, 3}))
        with SparkContext(EngineConfig(), fault_plan=plan) as sc:
            result = sorted(sc.parallelize(list(range(20)), num_partitions=5)
                            .map(lambda x: x * 2).collect())
        assert result == [2 * i for i in range(20)]


class TestSparkContext:
    def test_context_manager_stops(self, engine_config):
        with SparkContext(engine_config) as sc:
            sc.parallelize([1]).collect()
        with pytest.raises(RuntimeError):
            sc.run_job(sc.parallelize([1]))

    def test_stop_idempotent(self, engine_config):
        sc = SparkContext(engine_config)
        sc.stop()
        sc.stop()

    def test_default_parallelism(self, engine_config):
        with SparkContext(engine_config) as sc:
            assert sc.default_parallelism == engine_config.parallelism
            assert sc.total_cores == engine_config.total_cores

    def test_shared_fs_lazily_created(self, engine_config):
        with SparkContext(engine_config) as sc:
            fs = sc.shared_fs
            assert fs is sc.shared_fs  # same instance
            fs.write("probe", np.zeros(1))

    def test_run_job_custom_function(self, spark_context):
        rdd = spark_context.parallelize(list(range(10)), num_partitions=2)
        sizes = spark_context.run_job(rdd, lambda records: len(records))
        assert sum(sizes) == 10

"""Tests for the RDD API: transformations, actions, caching, partitioning semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import EngineConfig
from repro.spark.context import SparkContext
from repro.spark.partitioner import MultiDiagonalPartitioner, PortableHashPartitioner
from repro.spark.rdd import ShuffledRDD


class TestBasicTransformations:
    def test_parallelize_collect_round_trip(self, spark_context):
        data = [(i, i * i) for i in range(20)]
        assert sorted(spark_context.parallelize(data).collect()) == data

    def test_map(self, spark_context):
        rdd = spark_context.parallelize(list(range(10)))
        assert sorted(rdd.map(lambda x: x * 2).collect()) == [2 * i for i in range(10)]

    def test_filter(self, spark_context):
        rdd = spark_context.parallelize(list(range(20)))
        assert sorted(rdd.filter(lambda x: x % 2 == 0).collect()) == list(range(0, 20, 2))

    def test_flatmap(self, spark_context):
        rdd = spark_context.parallelize([1, 2, 3])
        assert sorted(rdd.flatMap(lambda x: [x] * x).collect()) == [1, 2, 2, 3, 3, 3]

    def test_map_values(self, spark_context):
        rdd = spark_context.parallelize([("a", 1), ("b", 2)])
        assert dict(rdd.mapValues(lambda v: v + 10).collect()) == {"a": 11, "b": 12}

    def test_keys_values(self, spark_context):
        rdd = spark_context.parallelize([("a", 1), ("b", 2)])
        assert sorted(rdd.keys().collect()) == ["a", "b"]
        assert sorted(rdd.values().collect()) == [1, 2]

    def test_map_partitions_with_index(self, spark_context):
        rdd = spark_context.parallelize(list(range(8)), num_partitions=4)
        out = rdd.mapPartitionsWithIndex(lambda idx, it: [(idx, len(list(it)))]).collect()
        assert sum(count for _, count in out) == 8
        assert {idx for idx, _ in out} == {0, 1, 2, 3}

    def test_chained_transformations(self, spark_context):
        rdd = spark_context.parallelize(list(range(50)))
        result = rdd.map(lambda x: x + 1).filter(lambda x: x % 5 == 0).map(lambda x: x // 5)
        assert sorted(result.collect()) == list(range(1, 11))

    def test_transformations_are_lazy(self, spark_context):
        calls = []

        def record(x):
            calls.append(x)
            return x

        rdd = spark_context.parallelize([1, 2, 3]).map(record)
        assert calls == []          # nothing computed yet
        rdd.collect()
        assert sorted(calls) == [1, 2, 3]


class TestActions:
    def test_count(self, spark_context):
        assert spark_context.parallelize(list(range(33))).count() == 33

    def test_take_and_first(self, spark_context):
        rdd = spark_context.parallelize(list(range(10)), num_partitions=3)
        assert len(rdd.take(4)) == 4
        assert rdd.first() in range(10)
        assert rdd.take(0) == []

    def test_first_on_empty_raises(self, spark_context):
        with pytest.raises(ValueError):
            spark_context.parallelize([]).first()

    def test_reduce(self, spark_context):
        assert spark_context.parallelize(list(range(1, 11))).reduce(lambda a, b: a + b) == 55

    def test_reduce_empty_raises(self, spark_context):
        with pytest.raises(ValueError):
            spark_context.parallelize([]).reduce(lambda a, b: a + b)

    def test_collect_as_map(self, spark_context):
        rdd = spark_context.parallelize([("x", 1), ("y", 2)])
        assert rdd.collectAsMap() == {"x": 1, "y": 2}

    def test_count_by_key(self, spark_context):
        rdd = spark_context.parallelize([("a", 1), ("a", 2), ("b", 3)])
        assert rdd.countByKey() == {"a": 2, "b": 1}

    def test_foreach(self, spark_context):
        seen = []
        spark_context.parallelize([1, 2, 3]).foreach(seen.append)
        assert sorted(seen) == [1, 2, 3]

    def test_glom_partition_count(self, spark_context):
        rdd = spark_context.parallelize(list(range(12)), num_partitions=4)
        parts = rdd.glom()
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == 12

    def test_collect_accounts_driver_traffic(self, spark_context):
        before = spark_context.metrics.collect_bytes
        spark_context.parallelize([np.zeros(1000)]).collect()
        assert spark_context.metrics.collect_bytes >= before + 8000


class TestByKeyOperations:
    def test_reduce_by_key(self, spark_context):
        rdd = spark_context.parallelize([("a", 1), ("b", 5), ("a", 3)])
        assert dict(rdd.reduceByKey(lambda x, y: x + y).collect()) == {"a": 4, "b": 5}

    def test_reduce_by_key_triggers_shuffle(self, spark_context):
        rdd = spark_context.parallelize([("a", 1), ("a", 2)])
        rdd.reduceByKey(lambda x, y: x + y).collect()
        assert spark_context.metrics.shuffle_count == 1

    def test_group_by_key(self, spark_context):
        rdd = spark_context.parallelize([("a", 1), ("a", 2), ("b", 3)])
        grouped = {k: sorted(v) for k, v in rdd.groupByKey().collect()}
        assert grouped == {"a": [1, 2], "b": [3]}

    def test_combine_by_key_list_pairing(self, spark_context):
        # The paper's ListAppend/ListUnpack pairing pattern.
        rdd = spark_context.parallelize([((0, 1), "A"), ((0, 1), "D"), ((1, 1), "A")])
        combined = rdd.combineByKey(lambda v: [v], lambda acc, v: acc + [v],
                                    lambda a, b: a + b)
        result = {k: sorted(v) for k, v in combined.collect()}
        assert result == {(0, 1): ["A", "D"], (1, 1): ["A"]}

    def test_by_key_on_non_pairs_raises(self, spark_context):
        rdd = spark_context.parallelize([1, 2, 3])
        with pytest.raises(TypeError):
            rdd.reduceByKey(lambda a, b: a + b).collect()

    def test_reduce_by_key_with_custom_partitioner(self, spark_context):
        partitioner = MultiDiagonalPartitioner(4, 4)
        rdd = spark_context.parallelize([((0, 1), 5), ((0, 1), 3), ((2, 3), 1)])
        reduced = rdd.reduceByKey(min, partitioner)
        assert reduced.partitioner == partitioner
        assert dict(reduced.collect()) == {(0, 1): 3, (2, 3): 1}


class TestPartitioning:
    def test_partition_by_places_keys_correctly(self, spark_context):
        partitioner = PortableHashPartitioner(5)
        rdd = spark_context.parallelize([(i, i) for i in range(40)]).partitionBy(partitioner)
        parts = rdd.glom()
        for index, part in enumerate(parts):
            for key, _ in part:
                assert partitioner(key) == index

    def test_partition_by_is_noop_when_already_partitioned(self, spark_context):
        partitioner = PortableHashPartitioner(4)
        rdd = spark_context.parallelize([(i, i) for i in range(10)], partitioner=partitioner)
        assert rdd.partitionBy(partitioner) is rdd

    def test_partition_by_accepts_int(self, spark_context):
        rdd = spark_context.parallelize([(i, i) for i in range(10)]).partitionBy(3)
        assert rdd.num_partitions == 3

    def test_map_drops_partitioner_filter_keeps_it(self, spark_context):
        partitioner = PortableHashPartitioner(4)
        rdd = spark_context.parallelize([(i, i) for i in range(10)], partitioner=partitioner)
        assert rdd.map(lambda kv: kv).partitioner is None
        assert rdd.filter(lambda kv: True).partitioner == partitioner
        assert rdd.mapValues(lambda v: v).partitioner == partitioner
        assert rdd.map_preserving(lambda kv: kv).partitioner == partitioner

    def test_union_concatenates_partitions_and_drops_partitioner(self, spark_context):
        partitioner = PortableHashPartitioner(4)
        a = spark_context.parallelize([(1, "a")], partitioner=partitioner)
        b = spark_context.parallelize([(2, "b")], partitioner=partitioner)
        union = spark_context.union([a, b])
        # This is the partition-explosion behaviour Section 5.2 warns about.
        assert union.num_partitions == a.num_partitions + b.num_partitions
        assert union.partitioner is None
        assert sorted(union.collect()) == [(1, "a"), (2, "b")]

    def test_union_via_method(self, spark_context):
        a = spark_context.parallelize([1, 2])
        b = spark_context.parallelize([3])
        assert sorted(a.union(b).collect()) == [1, 2, 3]

    def test_cartesian(self, spark_context):
        a = spark_context.parallelize([1, 2], num_partitions=2)
        b = spark_context.parallelize(["x", "y"], num_partitions=2)
        pairs = sorted(a.cartesian(b).collect())
        assert pairs == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        assert a.cartesian(b).num_partitions == 4

    def test_cartesian_counts_data_movement(self, spark_context):
        a = spark_context.parallelize([np.zeros(100)], num_partitions=1)
        b = spark_context.parallelize([np.zeros(100)], num_partitions=1)
        a.cartesian(b).collect()
        assert spark_context.metrics.shuffle_bytes > 0


class TestCaching:
    def test_cache_avoids_recomputation(self, spark_context):
        calls = []

        def record(x):
            calls.append(x)
            return x

        rdd = spark_context.parallelize([1, 2, 3], num_partitions=1).map(record).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 3  # computed once despite two actions

    def test_unpersist_recomputes(self, spark_context):
        calls = []
        rdd = spark_context.parallelize([1], num_partitions=1) \
            .map(lambda x: calls.append(x) or x).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 2

    def test_cached_flag(self, spark_context):
        rdd = spark_context.parallelize([1])
        assert not rdd.is_cached()
        rdd.cache()
        assert rdd.is_cached()

    def test_cache_metrics(self, spark_context):
        rdd = spark_context.parallelize([np.zeros(100)], num_partitions=1).cache()
        rdd.collect()
        assert spark_context.metrics.cached_partitions >= 1


class TestShuffledRDD:
    def test_shuffle_materialized_once(self, spark_context):
        rdd = spark_context.parallelize([("a", 1), ("b", 2)]).partitionBy(2)
        rdd.collect()
        rdd.collect()
        assert spark_context.metrics.shuffle_count == 1

    def test_shuffle_is_shuffled_rdd(self, spark_context):
        rdd = spark_context.parallelize([("a", 1)]).partitionBy(2)
        assert isinstance(rdd, ShuffledRDD)

    def test_chained_shuffles(self, spark_context):
        rdd = spark_context.parallelize([(i % 3, i) for i in range(30)])
        result = rdd.reduceByKey(lambda a, b: a + b).partitionBy(PortableHashPartitioner(2))
        collected = dict(result.collect())
        expected = {k: sum(i for i in range(30) if i % 3 == k) for k in range(3)}
        assert collected == expected
        assert spark_context.metrics.shuffle_count == 2

    def test_threaded_backend_gives_same_results(self, threaded_config):
        with SparkContext(threaded_config) as sc:
            rdd = sc.parallelize([(i % 5, i) for i in range(100)], num_partitions=8)
            result = dict(rdd.reduceByKey(lambda a, b: a + b).collect())
        expected = {k: sum(i for i in range(100) if i % 5 == k) for k in range(5)}
        assert result == expected

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-100, 100)), max_size=60),
           st.integers(1, 7))
    def test_property_reduce_by_key_matches_python(self, data, num_partitions):
        expected = {}
        for k, v in data:
            expected[k] = expected.get(k, 0) + v
        with SparkContext(EngineConfig(backend="serial", num_executors=2,
                                       cores_per_executor=1)) as sc:
            rdd = sc.parallelize(data, num_partitions=num_partitions)
            result = dict(rdd.reduceByKey(lambda a, b: a + b).collect())
        assert result == expected

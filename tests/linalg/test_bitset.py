"""Packed-bitset storage and kernels: round trips and dense equivalence."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.linalg.algebra import get_algebra
from repro.linalg.bitset import (PackedBlock, is_packed, as_packed,
                                 as_dense_bool, pack_bits, unpack_bits,
                                 packed_and, packed_closure,
                                 packed_floyd_warshall_inplace, packed_or,
                                 packed_product, packed_rank1_update,
                                 packed_width)
from repro.linalg.kernels import (floyd_warshall_inplace, fw_rank1_update,
                                  semiring_closure)
from repro.linalg.semiring import elementwise_combine, semiring_product

REACH = get_algebra("reachability")


def random_bits(rng, rows, cols, density=0.3):
    return rng.random((rows, cols)) < density


# ---------------------------------------------------------------------------
# Round trips (property-tested, including ragged widths with cols % 64 != 0)
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(rows=st.integers(1, 70), cols=st.integers(1, 200),
       density=st.floats(0.0, 1.0), seed=st.integers(0, 2**31 - 1))
def test_pack_unpack_round_trip(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    bits = random_bits(rng, rows, cols, density)
    block = PackedBlock.from_dense(bits)
    assert block.shape == (rows, cols)
    assert block.words.shape == (rows, packed_width(cols))
    assert np.array_equal(block.to_dense(), bits)


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(1, 50), cols=st.integers(1, 150),
       seed=st.integers(0, 2**31 - 1))
def test_padding_bits_stay_zero(rows, cols, seed):
    """The invariant every kernel relies on: bits past ``cols`` are zero."""
    rng = np.random.default_rng(seed)
    block = PackedBlock.from_dense(random_bits(rng, rows, cols))
    tail = cols % 64
    if tail:
        mask = np.uint64(0xFFFFFFFFFFFFFFFF) << np.uint64(tail)
        assert not (block.words[:, -1] & mask).any()
    # Kernels preserve it.
    closed = packed_floyd_warshall_inplace(
        PackedBlock.from_dense(random_bits(rng, cols, cols)))
    if tail:
        assert not (closed.words[:, -1] & mask).any()


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(1, 60), cols=st.integers(1, 150),
       seed=st.integers(0, 2**31 - 1))
def test_transpose_and_bit_slices(rows, cols, seed):
    rng = np.random.default_rng(seed)
    bits = random_bits(rng, rows, cols)
    block = PackedBlock.from_dense(bits)
    assert np.array_equal(block.T.to_dense(), bits.T)
    j = int(rng.integers(0, cols))
    i = int(rng.integers(0, rows))
    assert np.array_equal(block.bit_column(j), bits[:, j])
    assert np.array_equal(block.bit_row(i), bits[i, :])


def test_pack_bits_shapes_and_errors():
    row = pack_bits(np.array([True, False, True]))
    assert row.shape == (1, 1)
    assert unpack_bits(row, 3).tolist() == [[True, False, True]]
    with pytest.raises(ValidationError):
        pack_bits(np.zeros((2, 2, 2), dtype=bool))
    with pytest.raises(ValidationError):
        unpack_bits(np.zeros((2, 2), dtype=np.uint64), 300)
    with pytest.raises(ValidationError):
        PackedBlock(np.zeros((2, 1), dtype=np.uint64), (2, 65))


def test_packed_block_surface():
    rng = np.random.default_rng(0)
    bits = random_bits(rng, 10, 70)
    block = PackedBlock.from_dense(bits)
    assert is_packed(block) and not is_packed(bits)
    assert as_packed(block) is block
    assert np.array_equal(as_dense_bool(block), bits)
    assert np.array_equal(as_dense_bool(bits), bits)
    assert block.dtype == np.bool_
    assert block.nbytes == block.words.nbytes
    # 64x denser than a float64 block, 8x denser than bool, up to padding.
    assert block.nbytes <= ((70 + 63) // 64) * 8 * 10
    clone = block.copy()
    clone.words[0, 0] = np.uint64(0)
    assert block == PackedBlock.from_dense(bits)  # copy is deep
    assert pickle.loads(pickle.dumps(block)) == block


# ---------------------------------------------------------------------------
# Kernel equivalence against the dense boolean reference
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(m=st.integers(1, 40), k=st.integers(1, 80), n=st.integers(1, 90),
       seed=st.integers(0, 2**31 - 1))
def test_packed_product_matches_dense(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = random_bits(rng, m, k, 0.2)
    b = random_bits(rng, k, n, 0.2)
    ref = semiring_product(a, b, REACH)
    got = packed_product(PackedBlock.from_dense(a), PackedBlock.from_dense(b))
    assert np.array_equal(got.to_dense(), ref)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 90), density=st.floats(0.0, 0.3),
       seed=st.integers(0, 2**31 - 1))
def test_packed_floyd_warshall_matches_dense(n, density, seed):
    rng = np.random.default_rng(seed)
    adj = random_bits(rng, n, n, density)
    np.fill_diagonal(adj, True)
    ref = floyd_warshall_inplace(adj.copy(), REACH)
    assert np.array_equal(packed_closure(adj), ref)


def test_packed_elementwise_and_rank1():
    rng = np.random.default_rng(3)
    a = random_bits(rng, 20, 70)
    b = random_bits(rng, 20, 70)
    pa, pb = PackedBlock.from_dense(a), PackedBlock.from_dense(b)
    assert np.array_equal(packed_or(pa, pb).to_dense(), a | b)
    assert np.array_equal(packed_and(pa, pb).to_dense(), a & b)
    out = pa.copy()
    packed_or(pa, pb, out=out)
    assert np.array_equal(out.to_dense(), a | b)

    col = rng.random(20) < 0.5
    row = rng.random(70) < 0.5
    ref = fw_rank1_update(a, col, row, REACH)
    got = packed_rank1_update(pa, col, row)
    assert np.array_equal(got.to_dense(), ref)
    assert np.array_equal(pa.to_dense(), a)  # input untouched


def test_semiring_product_out_overwrites_like_dense():
    """`semiring_product(out=)` must not accumulate stale bits under packing."""
    rng = np.random.default_rng(9)
    a = random_bits(rng, 16, 16, 0.2)
    pa = PackedBlock.from_dense(a)
    dirty = PackedBlock.from_dense(np.ones((16, 16), dtype=bool))
    result = semiring_product(pa, pa, REACH, out=dirty)
    assert result is dirty
    assert np.array_equal(dirty.to_dense(), semiring_product(a, a, REACH))


def test_packed_product_accumulates_into_out():
    rng = np.random.default_rng(4)
    a = random_bits(rng, 15, 30)
    b = random_bits(rng, 30, 40)
    seed_bits = random_bits(rng, 15, 40)
    out = PackedBlock.from_dense(seed_bits)
    packed_product(PackedBlock.from_dense(a), PackedBlock.from_dense(b), out=out)
    ref = seed_bits | semiring_product(a, b, REACH)
    assert np.array_equal(out.to_dense(), ref)


def test_kernel_shape_errors():
    rng = np.random.default_rng(5)
    a = PackedBlock.from_dense(random_bits(rng, 4, 6))
    b = PackedBlock.from_dense(random_bits(rng, 5, 6))
    with pytest.raises(ValidationError):
        packed_or(a, b)
    with pytest.raises(ValidationError):
        packed_product(a, a)          # inner dims disagree (6 vs 4)
    with pytest.raises(ValidationError):
        packed_floyd_warshall_inplace(a)  # not square
    with pytest.raises(ValidationError):
        packed_rank1_update(a, np.ones(3, dtype=bool), np.ones(6, dtype=bool))


# ---------------------------------------------------------------------------
# Dispatch: the generic kernels route packed operands to the bitset kernels
# ---------------------------------------------------------------------------
def test_generic_kernels_dispatch_packed():
    rng = np.random.default_rng(6)
    a = random_bits(rng, 12, 12, 0.2)
    np.fill_diagonal(a, True)
    pa = PackedBlock.from_dense(a)
    combined = elementwise_combine(pa, pa, "reachability")
    assert is_packed(combined)
    prod = semiring_product(pa, pa, "reachability")
    assert is_packed(prod)
    assert np.array_equal(prod.to_dense(), semiring_product(a, a, REACH))
    closed = floyd_warshall_inplace(pa.copy(), "reachability")
    assert is_packed(closed)
    assert np.array_equal(closed.to_dense(), semiring_closure(a, "reachability"))
    # Mixed packed/dense operands are coerced, not crashed on.
    mixed = semiring_product(pa, a, "reachability")
    assert np.array_equal(as_dense_bool(mixed), semiring_product(a, a, REACH))


def test_generic_kernels_reject_packed_for_numeric_algebras():
    pa = PackedBlock.from_dense(np.eye(4, dtype=bool))
    with pytest.raises(ValidationError):
        semiring_product(pa, pa, "shortest-path")
    with pytest.raises(ValidationError):
        elementwise_combine(pa, pa, "widest-path")
    with pytest.raises(ValidationError):
        floyd_warshall_inplace(pa, "shortest-path")
    with pytest.raises(ValidationError):
        fw_rank1_update(pa, np.ones(4, dtype=bool), np.ones(4, dtype=bool),
                        "most-reliable")

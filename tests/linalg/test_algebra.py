"""Semiring-law and registry tests for the pluggable path algebras."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, ValidationError
from repro.linalg.algebra import (
    LONGEST_PATH,
    MOST_RELIABLE,
    REACHABILITY,
    SHORTEST_PATH,
    WIDEST_PATH,
    Semiring,
    algebra_catalog,
    available_algebras,
    get_algebra,
    register_algebra,
    resolve_algebra_name,
)
from repro.linalg.semiring import (
    elementwise_combine,
    semiring_power,
    semiring_product,
    semiring_square,
)

ALL_ALGEBRAS = algebra_catalog()


def algebra_dtype_grid():
    """Every (algebra, dtype) point the policy admits."""
    return [(algebra, dtype) for algebra in ALL_ALGEBRAS for dtype in algebra.dtypes]


def random_domain_matrix(algebra: Semiring, rng: np.random.Generator,
                         rows: int, cols: int, dtype=None,
                         zero_prob: float = 0.3) -> np.ndarray:
    """Random matrix with entries from the algebra's domain (incl. ``zero``)."""
    dtype = np.dtype(dtype or algebra.default_dtype)
    if dtype == np.bool_:
        return rng.random((rows, cols)) < 0.6
    if algebra is MOST_RELIABLE:
        values = rng.uniform(0.05, 1.0, size=(rows, cols))
    elif algebra is LONGEST_PATH:
        values = rng.uniform(-5.0, 10.0, size=(rows, cols))
    else:
        values = rng.uniform(0.5, 10.0, size=(rows, cols))
    mask = rng.random((rows, cols)) < zero_prob
    values[mask] = algebra.zero
    return values.astype(dtype)


def naive_product(a: np.ndarray, b: np.ndarray, algebra: Semiring) -> np.ndarray:
    m, n = a.shape[0], b.shape[1]
    out = np.empty((m, n), dtype=a.dtype)
    for i in range(m):
        for j in range(n):
            out[i, j] = algebra.add_op.reduce(algebra.mul_op(a[i, :], b[:, j]))
    return out


class TestRegistry:
    def test_five_algebras_registered(self):
        names = available_algebras()
        for expected in ("shortest-path", "widest-path", "most-reliable",
                         "longest-path", "reachability"):
            assert expected in names

    @pytest.mark.parametrize("alias,canonical", [
        ("minplus", "shortest-path"),
        ("min_plus", "shortest-path"),
        ("bottleneck", "widest-path"),
        ("viterbi", "most-reliable"),
        ("critical-path", "longest-path"),
        ("transitive-closure", "reachability"),
    ])
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_algebra_name(alias) == canonical
        assert get_algebra(alias).name == canonical

    def test_none_means_minplus(self):
        assert get_algebra(None) is SHORTEST_PATH

    def test_instance_passthrough(self):
        assert get_algebra(WIDEST_PATH) is WIDEST_PATH

    def test_unknown_algebra_raises(self):
        with pytest.raises(ConfigurationError):
            get_algebra("no-such-algebra")

    def test_conflicting_alias_rejected(self):
        clone = Semiring(name="clone", add_op=np.minimum, mul_op=np.add,
                         zero=np.inf, one=0.0)
        with pytest.raises(ConfigurationError):
            register_algebra(clone, aliases=("minplus",))

    @pytest.mark.parametrize("algebra", ALL_ALGEBRAS, ids=lambda a: a.name)
    def test_pickle_round_trip_is_identity(self, algebra):
        assert pickle.loads(pickle.dumps(algebra)) is algebra

    def test_bad_default_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            Semiring(name="bad", add_op=np.minimum, mul_op=np.add,
                     zero=np.inf, one=0.0, dtypes=("float64",),
                     default_dtype="float32")


class TestDtypePolicy:
    @pytest.mark.parametrize("algebra,dtype", algebra_dtype_grid(),
                             ids=lambda v: getattr(v, "name", v))
    def test_resolve_supported(self, algebra, dtype):
        assert algebra.resolve_dtype(dtype).name == dtype

    def test_resolve_default(self):
        assert SHORTEST_PATH.resolve_dtype(None) == np.float64
        assert REACHABILITY.resolve_dtype(None) == np.bool_

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            SHORTEST_PATH.resolve_dtype("bool")
        with pytest.raises(ConfigurationError):
            REACHABILITY.resolve_dtype("float64")

    def test_result_dtype_preserves_float32(self):
        a = np.zeros((2, 2), dtype=np.float32)
        assert SHORTEST_PATH.result_dtype(a, a) == np.float32
        # Mixed precision upcasts; unsupported int falls back to the default.
        assert SHORTEST_PATH.result_dtype(a, a.astype(np.float64)) == np.float64
        assert SHORTEST_PATH.result_dtype(np.zeros((2, 2), dtype=np.int64)) == np.float64

    def test_product_preserves_float32(self):
        rng = np.random.default_rng(0)
        a = random_domain_matrix(SHORTEST_PATH, rng, 6, 6, dtype=np.float32)
        out = semiring_product(a, a, SHORTEST_PATH)
        assert out.dtype == np.float32


class TestPrepareAdjacency:
    @pytest.mark.parametrize("algebra", ALL_ALGEBRAS, ids=lambda a: a.name)
    def test_diagonal_is_one_and_missing_is_zero(self, algebra):
        weights = np.full((4, 4), np.inf)
        weights[0, 1] = 0.5
        prepared = algebra.prepare_adjacency(weights)
        one = algebra.one_like(prepared.dtype) if prepared.dtype != np.bool_ else True
        zero = algebra.zero_like(prepared.dtype) if prepared.dtype != np.bool_ else False
        assert (np.diag(prepared) == one).all()
        assert prepared[2, 3] == zero

    def test_bool_from_float_weights(self):
        weights = np.array([[0.0, 2.0], [np.inf, 0.0]])
        prepared = REACHABILITY.prepare_adjacency(weights)
        assert prepared.dtype == np.bool_
        assert prepared[0, 1] and not prepared[1, 0]
        assert prepared[0, 0] and prepared[1, 1]

    def test_dtype_cast(self):
        weights = np.zeros((3, 3))
        assert SHORTEST_PATH.prepare_adjacency(weights, dtype="float32").dtype == np.float32

    def test_input_dtype_preserved_without_explicit_dtype(self):
        weights = np.zeros((3, 3), dtype=np.float32)
        assert SHORTEST_PATH.prepare_adjacency(weights).dtype == np.float32

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            SHORTEST_PATH.prepare_adjacency(np.zeros((2, 3)))


class TestInputValidators:
    def test_negative_rejected_for_minplus_and_maxmin(self):
        bad = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValidationError):
            SHORTEST_PATH.validate_input(bad)
        with pytest.raises(ValidationError):
            WIDEST_PATH.validate_input(bad)

    def test_probability_bounds_for_most_reliable(self):
        with pytest.raises(ValidationError):
            MOST_RELIABLE.validate_input(np.array([[0.0, 1.5], [1.5, 0.0]]))
        MOST_RELIABLE.validate_input(np.array([[0.0, 0.5], [0.5, 0.0]]))

    def test_reachability_needs_no_precondition(self):
        REACHABILITY.validate_input(np.array([[0.0, -7.0], [99.0, 0.0]]))

    def test_longest_path_requires_dag(self):
        cyclic = np.full((3, 3), np.inf)
        cyclic[0, 1] = cyclic[1, 2] = cyclic[2, 0] = 1.0
        with pytest.raises(ValidationError):
            LONGEST_PATH.validate_input(cyclic)
        dag = np.full((3, 3), np.inf)
        dag[0, 1] = dag[1, 2] = 1.0
        LONGEST_PATH.validate_input(dag)

    def test_undirected_edge_is_a_cycle_for_longest_path(self):
        sym = np.full((2, 2), np.inf)
        sym[0, 1] = sym[1, 0] = 1.0
        with pytest.raises(ValidationError):
            LONGEST_PATH.validate_input(sym)


class TestSemiringLaws:
    """Property-style algebraic laws on random domain matrices.

    Checked elementwise for every registered algebra and supported dtype:
    ⊕ associativity/commutativity/idempotence, identity and annihilator
    behaviour of ``zero``/``one``, and distributivity of ⊗ over ⊕.
    """

    @pytest.mark.parametrize("algebra,dtype", algebra_dtype_grid(),
                             ids=lambda v: getattr(v, "name", v))
    def test_add_is_associative_commutative_idempotent(self, algebra, dtype):
        rng = np.random.default_rng(7)
        a = random_domain_matrix(algebra, rng, 8, 8, dtype)
        b = random_domain_matrix(algebra, rng, 8, 8, dtype)
        c = random_domain_matrix(algebra, rng, 8, 8, dtype)
        assert algebra.allclose(algebra.add(algebra.add(a, b), c),
                                algebra.add(a, algebra.add(b, c)))
        assert algebra.allclose(algebra.add(a, b), algebra.add(b, a))
        assert algebra.allclose(algebra.add(a, a), a)

    @pytest.mark.parametrize("algebra,dtype", algebra_dtype_grid(),
                             ids=lambda v: getattr(v, "name", v))
    def test_identities_and_annihilator(self, algebra, dtype):
        rng = np.random.default_rng(8)
        a = random_domain_matrix(algebra, rng, 8, 8, dtype)
        zero = np.full_like(a, algebra.zero_like(dtype))
        one = np.full_like(a, algebra.one_like(dtype))
        # zero is the ⊕ identity, one the ⊗ identity, zero the ⊗ annihilator.
        assert algebra.allclose(algebra.add(a, zero), a)
        assert algebra.allclose(algebra.mul(a, one), a)
        assert algebra.allclose(algebra.mul(a, zero), zero)

    @pytest.mark.parametrize("algebra,dtype", algebra_dtype_grid(),
                             ids=lambda v: getattr(v, "name", v))
    def test_mul_distributes_over_add(self, algebra, dtype):
        rng = np.random.default_rng(9)
        a = random_domain_matrix(algebra, rng, 8, 8, dtype)
        b = random_domain_matrix(algebra, rng, 8, 8, dtype)
        c = random_domain_matrix(algebra, rng, 8, 8, dtype)
        left = algebra.mul(a, algebra.add(b, c))
        right = algebra.add(algebra.mul(a, b), algebra.mul(a, c))
        assert algebra.allclose(left, right, rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("algebra", ALL_ALGEBRAS, ids=lambda a: a.name)
    def test_matrix_product_matches_naive(self, algebra):
        rng = np.random.default_rng(10)
        a = random_domain_matrix(algebra, rng, 5, 7)
        b = random_domain_matrix(algebra, rng, 7, 4)
        assert algebra.allclose(semiring_product(a, b, algebra),
                                naive_product(a, b, algebra))

    @pytest.mark.parametrize("algebra", ALL_ALGEBRAS, ids=lambda a: a.name)
    def test_identity_matrix_is_product_identity(self, algebra):
        rng = np.random.default_rng(11)
        a = random_domain_matrix(algebra, rng, 6, 6)
        ident = algebra.identity_matrix(6, a.dtype)
        assert algebra.allclose(semiring_product(a, ident, algebra), a)
        assert algebra.allclose(semiring_product(ident, a, algebra), a)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 7), st.integers(0, 10_000),
           st.sampled_from([a.name for a in ALL_ALGEBRAS]))
    def test_property_matrix_product_associativity(self, n, seed, algebra_name):
        algebra = get_algebra(algebra_name)
        rng = np.random.default_rng(seed)
        a = random_domain_matrix(algebra, rng, n, n)
        b = random_domain_matrix(algebra, rng, n, n)
        c = random_domain_matrix(algebra, rng, n, n)
        left = semiring_product(semiring_product(a, b, algebra), c, algebra)
        right = semiring_product(a, semiring_product(b, c, algebra), algebra)
        assert algebra.allclose(left, right, rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("algebra", ALL_ALGEBRAS, ids=lambda a: a.name)
    def test_square_absorbs_original(self, algebra):
        rng = np.random.default_rng(12)
        a = random_domain_matrix(algebra, rng, 6, 6)
        squared = semiring_square(a, algebra)
        # A ⊕ A² keeps A: combining back changes nothing.
        assert algebra.allclose(elementwise_combine(squared, a, algebra), squared)

    def test_power_requires_positive_exponent(self):
        with pytest.raises(ValidationError):
            semiring_power(np.zeros((2, 2)), 0, WIDEST_PATH)

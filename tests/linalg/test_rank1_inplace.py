"""In-place rank-1 update kernels and the packed broadcast vector.

The dynamic-update siblings of the pure ``*_rank1_update`` kernels must
produce the same matrices while mutating their block argument directly, and
their changed-row masks must name exactly the rows that moved — that mask is
what the serving layer's cache invalidation trusts.  ``PackedVector`` is the
8×-smaller wire form of the fw-2d broadcast column; its dense slice windows
must agree with the vector it packed.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.algebra import get_algebra
from repro.linalg.bitset import (PackedBlock, PackedVector, is_packed_vector,
                                 packed_rank1_update, packed_rank1_update_inplace)
from repro.linalg.kernels import fw_rank1_update, fw_rank1_update_inplace
from repro.linalg.witness import (witness_block, witness_rank1_update,
                                  witness_rank1_update_inplace, WitnessVector)


def prepared(n, seed, algebra="shortest-path"):
    adj = erdos_renyi_adjacency(n, seed=seed)
    return get_algebra(algebra).prepare_adjacency(adj)


class TestFwRank1UpdateInplace:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(4, 20),
           algebra=st.sampled_from(["shortest-path", "widest-path"]))
    def test_matches_pure_kernel_and_masks_changed_rows(self, seed, n, algebra):
        block = prepared(n, seed)
        rng = np.random.default_rng(seed)
        col = rng.uniform(0.0, 5.0, n)
        row = rng.uniform(0.0, 5.0, n)
        expected = fw_rank1_update(block.copy(), col, row, algebra)
        before = block.copy()
        mask = fw_rank1_update_inplace(block, col, row, algebra)
        assert np.array_equal(block, expected)
        assert np.array_equal(mask, (block != before).any(axis=1))

    def test_noop_update_reports_no_rows(self):
        block = prepared(8, 3)
        mask = fw_rank1_update_inplace(block, np.full(8, np.inf),
                                       np.full(8, np.inf))
        assert not mask.any()

    def test_float32_stays_float32(self):
        block = prepared(8, 3).astype(np.float32)
        fw_rank1_update_inplace(block, np.zeros(8, np.float32),
                                np.zeros(8, np.float32))
        assert block.dtype == np.float32


class TestPackedRank1UpdateInplace:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(4, 30))
    def test_matches_pure_kernel_and_masks_changed_rows(self, seed, n):
        rng = np.random.default_rng(seed)
        dense = rng.random((n, n)) < 0.3
        np.fill_diagonal(dense, True)
        col = rng.random(n) < 0.5
        row = rng.random(n) < 0.5
        block = PackedBlock.from_dense(dense)
        expected = packed_rank1_update(PackedBlock.from_dense(dense), col, row)
        mask = packed_rank1_update_inplace(block, col, row)
        assert np.array_equal(block.words, expected.words)
        assert np.array_equal(mask,
                              (block.to_dense() != dense).any(axis=1))

    def test_length_mismatch_rejected(self):
        block = PackedBlock.from_dense(np.eye(6, dtype=bool))
        with pytest.raises(ValidationError):
            packed_rank1_update_inplace(block, np.ones(5, bool), np.ones(6, bool))


class TestWitnessRank1UpdateInplace:
    def test_matches_pure_kernel_all_planes(self):
        n = 12
        block = witness_block(prepared(n, 7), 0, 0, "shortest-path")
        col = WitnessVector(block.values[:, 4].copy(), block.succs[:, 4].copy())
        row = WitnessVector(block.values[4, :].copy(), block.parents[4, :].copy())
        pure = witness_rank1_update(block.copy(), col, row, "shortest-path")
        before = block.values.copy()
        mask = witness_rank1_update_inplace(block, col, row, "shortest-path")
        assert np.array_equal(block.values, pure.values)
        assert np.array_equal(block.parents, pure.parents)
        assert np.array_equal(block.succs, pure.succs)
        assert np.array_equal(mask, (block.values != before).any(axis=1))

    def test_single_plane_takes_bare_column(self):
        n = 10
        block = witness_block(prepared(n, 9), 0, 0, "shortest-path",
                              single_plane=True)
        col = block.values[:, 3].copy()
        row = WitnessVector(block.values[3, :].copy(), block.parents[3, :].copy())
        pure = witness_rank1_update(block.copy(), col, row, "shortest-path")
        witness_rank1_update_inplace(block, col, row, "shortest-path")
        assert np.array_equal(block.values, pure.values)
        assert np.array_equal(block.parents, pure.parents)

    def test_rejects_bare_row_operand(self):
        block = witness_block(prepared(6, 1), 0, 0, "shortest-path")
        with pytest.raises(ValidationError):
            witness_rank1_update_inplace(block, block.values[:, 0],
                                         block.values[0, :], "shortest-path")


class TestPackedVector:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 200))
    def test_roundtrip_and_windows(self, seed, n):
        rng = np.random.default_rng(seed)
        bits = rng.random(n) < 0.4
        vec = PackedVector.from_dense(bits)
        assert is_packed_vector(vec)
        assert vec.shape == (n,) and vec.dtype == np.bool_
        assert np.array_equal(vec.to_dense(), bits)
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(lo, n + 1))
        assert np.array_equal(vec[lo:hi], bits[lo:hi])

    def test_wire_size_is_one_eighth(self):
        vec = PackedVector.from_dense(np.ones(1024, dtype=bool))
        assert vec.nbytes == 1024 // 8

    def test_pickle_roundtrip(self):
        bits = np.arange(90) % 3 == 0
        clone = pickle.loads(pickle.dumps(PackedVector.from_dense(bits)))
        assert np.array_equal(clone.to_dense(), bits)

    def test_only_unit_step_slices(self):
        vec = PackedVector.from_dense(np.ones(16, dtype=bool))
        with pytest.raises(ValidationError):
            vec[3]
        with pytest.raises(ValidationError):
            vec[::2]

    def test_non_1d_source_rejected(self):
        with pytest.raises(ValidationError):
            PackedVector.from_dense(np.ones((4, 4), dtype=bool))

"""Witness (parent-pointer) tracking: blocks, kernels, repair, reconstruction."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SolverError, ValidationError
from repro.linalg import witness as W
from repro.linalg.algebra import get_algebra
from repro.linalg.blocks import BlockedMatrix, blocks_to_matrix, matrix_to_blocks
from repro.linalg.kernels import (blocked_floyd_warshall_inplace,
                                  floyd_warshall_inplace, semiring_closure)
from repro.linalg.semiring import elementwise_combine, semiring_product

WITNESS_ALGEBRAS = ("shortest-path", "widest-path", "most-reliable", "reachability")


def random_adjacency(n, seed, algebra):
    """Canonical symmetric adjacency respecting the algebra's weight domain."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < 0.35
    mask = np.triu(mask, 1)
    mask = mask | mask.T
    if get_algebra(algebra).name == "most-reliable":
        weights = rng.uniform(0.05, 0.95, size=(n, n))
    else:
        weights = rng.uniform(0.5, 9.5, size=(n, n))
    weights = np.triu(weights, 1)
    weights = weights + weights.T
    adj = np.where(mask, weights, np.inf)
    np.fill_diagonal(adj, 0.0)
    return adj


def assert_paths_valid(algebra, prepared, distances, parents):
    """Every reachable pair reconstructs to an edge path folding to the closure."""
    alg = get_algebra(algebra)
    n = distances.shape[0]
    zero = alg.zero_like(distances.dtype)
    for i in range(n):
        for j in range(n):
            if i == j:
                assert parents[i, j] == W.NO_VERTEX
                continue
            if distances[i, j] == zero:
                assert parents[i, j] == W.NO_VERTEX
                with pytest.raises(SolverError):
                    W.reconstruct_path(parents, i, j)
                continue
            path = W.reconstruct_path(parents, i, j)
            assert path[0] == i and path[-1] == j
            assert len(set(path)) == len(path)  # simple path
            fold = W.path_weight(prepared, path, alg)
            assert np.isclose(float(fold), float(distances[i, j]),
                              rtol=1e-6, atol=1e-9)


# ---------------------------------------------------------------------------
# WitnessBlock / WitnessVector basics
# ---------------------------------------------------------------------------
class TestWitnessBlock:
    def test_transpose_swaps_planes(self):
        vals = np.array([[0.0, 2.0], [2.0, 0.0]])
        parents = np.array([[-1, 0], [1, -1]], dtype=np.int32)
        succs = np.array([[-1, 1], [0, -1]], dtype=np.int32)
        wb = W.WitnessBlock(vals, parents, succs)
        assert np.array_equal(wb.T.parents, succs.T)
        assert np.array_equal(wb.T.succs, parents.T)
        assert np.array_equal(wb.T.values, vals.T)
        # double transpose is the identity
        assert wb.T.T == wb

    def test_pickle_roundtrip(self):
        wb = W.witness_block(np.array([[0.0, 3.0], [3.0, 0.0]]), 4, 4,
                             "shortest-path")
        clone = pickle.loads(pickle.dumps(wb))
        assert clone == wb
        assert clone.nbytes == wb.nbytes

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            W.WitnessBlock(np.zeros((2, 2)), np.zeros((2, 3), np.int32),
                           np.zeros((2, 2), np.int32))
        with pytest.raises(ValidationError):
            W.WitnessBlock(np.zeros(3), np.zeros(3, np.int32),
                           np.zeros(3, np.int32))

    def test_initial_stamp_uses_global_ids(self):
        vals = np.array([[np.inf, 5.0], [5.0, np.inf]])
        wb = W.witness_block(vals, 10, 20, "shortest-path")
        # edge (10, 21): pred of 21 is 10; succ of 10 is 21
        assert wb.parents[0, 1] == 10
        assert wb.succs[0, 1] == 21
        # edge (11, 20): the other orientation of the same stored block
        assert wb.parents[1, 0] == 11
        assert wb.succs[1, 0] == 20

    def test_diagonal_block_stamp(self):
        vals = np.array([[0.0, np.inf], [np.inf, 0.0]])
        prepared = get_algebra("shortest-path").prepare_adjacency(vals)
        wb = W.witness_block(prepared, 6, 6, "shortest-path")
        assert wb.parents[0, 0] == W.NO_VERTEX
        assert wb.parents[0, 1] == W.NO_VERTEX  # no edge

    def test_witness_vector_slicing(self):
        col = W.WitnessVector(np.array([1.0, 2.0, 3.0]),
                              np.array([4, 5, 6], np.int32))
        piece = col[1:3]
        assert np.array_equal(piece.values, [2.0, 3.0])
        assert np.array_equal(piece.toward, [5, 6])
        with pytest.raises(ValidationError):
            col[1]

    def test_requires_witness_algebra(self):
        no_witness = get_algebra("shortest-path").__class__(
            name="plus-times", add_op=np.add, mul_op=np.multiply,
            zero=0.0, one=1.0)
        with pytest.raises(ValidationError):
            W.witness_block(np.zeros((2, 2)), 0, 0, no_witness)


# ---------------------------------------------------------------------------
# Paired kernels vs the value-only kernels
# ---------------------------------------------------------------------------
class TestWitnessKernels:
    @pytest.mark.parametrize("algebra", WITNESS_ALGEBRAS)
    def test_product_matches_value_kernel(self, algebra):
        alg = get_algebra(algebra)
        adj = random_adjacency(17, 3, algebra)
        prepared = alg.prepare_adjacency(adj)
        wb = W.witness_matrix(prepared, alg)
        prod = semiring_product(wb, wb, alg)
        dense = semiring_product(prepared, prepared, alg)
        assert alg.allclose(prod.values, dense)

    @pytest.mark.parametrize("algebra", WITNESS_ALGEBRAS)
    def test_combine_matches_value_kernel(self, algebra):
        alg = get_algebra(algebra)
        a = W.witness_matrix(alg.prepare_adjacency(random_adjacency(9, 0, algebra)), alg)
        b = W.witness_matrix(alg.prepare_adjacency(random_adjacency(9, 1, algebra)), alg)
        combined = elementwise_combine(a, b, alg)
        assert alg.allclose(combined.values,
                            alg.add(a.values, b.values))
        # ties keep the first operand's pointers
        same = elementwise_combine(a, a.copy(), alg)
        assert np.array_equal(same.parents, a.parents)

    def test_combine_winner_keeps_pointers(self):
        alg = get_algebra("shortest-path")
        a = W.WitnessBlock(np.array([[5.0]]), np.array([[7]], np.int32),
                           np.array([[8]], np.int32))
        b = W.WitnessBlock(np.array([[3.0]]), np.array([[1]], np.int32),
                           np.array([[2]], np.int32))
        combined = W.witness_combine(a, b, alg)
        assert combined.values[0, 0] == 3.0
        assert combined.parents[0, 0] == 1
        assert combined.succs[0, 0] == 2

    def test_mixing_witnessed_and_plain_raises(self):
        alg = get_algebra("shortest-path")
        wb = W.witness_matrix(alg.prepare_adjacency(random_adjacency(5, 0, "shortest-path")), alg)
        with pytest.raises(ValidationError):
            elementwise_combine(wb, wb.values, alg)
        with pytest.raises(ValidationError):
            semiring_product(wb, wb.values, alg)

    def test_arg_select_matches_add_reduce(self):
        for algebra in WITNESS_ALGEBRAS:
            alg = get_algebra(algebra)
            arr = alg.prepare_adjacency(random_adjacency(8, 2, algebra))
            ks = alg.arg_select(arr, axis=1)
            reduced = alg.add_reduce(arr, axis=1)
            assert np.array_equal(arr[np.arange(8), ks], reduced)

    def test_arg_select_requires_policy(self):
        from repro.common.errors import ConfigurationError
        from repro.linalg.algebra import Semiring
        counting = Semiring(name="count-paths", add_op=np.add,
                            mul_op=np.multiply, zero=0.0, one=1.0)
        assert not counting.supports_witness
        with pytest.raises(ConfigurationError):
            counting.arg_select(np.zeros((2, 2)), axis=1)


# ---------------------------------------------------------------------------
# Sequential closures with witnesses (property-based)
# ---------------------------------------------------------------------------
class TestWitnessClosures:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000),
           algebra=st.sampled_from(WITNESS_ALGEBRAS),
           n=st.integers(6, 24))
    def test_fw_paths_fold_to_closure(self, seed, algebra, n):
        """Property: reconstructed-path ⊗-fold equals the closure entry."""
        alg = get_algebra(algebra)
        adj = random_adjacency(n, seed, algebra)
        prepared = alg.prepare_adjacency(adj)
        reference = semiring_closure(adj, alg)
        wb = W.witness_matrix(prepared, alg)
        floyd_warshall_inplace(wb, alg)
        parents, _ = W.repair_parents(wb.values, wb.parents, prepared, alg)
        assert alg.allclose(wb.values, reference)
        assert_paths_valid(alg, prepared, wb.values, parents)

    @pytest.mark.parametrize("algebra", WITNESS_ALGEBRAS)
    def test_blocked_fw_paths(self, algebra):
        alg = get_algebra(algebra)
        adj = random_adjacency(26, 5, algebra)
        prepared = alg.prepare_adjacency(adj)
        reference = semiring_closure(adj, alg)
        wb = W.witness_matrix(prepared, alg)
        blocked_floyd_warshall_inplace(wb, 8, alg)
        parents, _ = W.repair_parents(wb.values, wb.parents, prepared, alg)
        assert alg.allclose(wb.values, reference)
        assert_paths_valid(alg, prepared, wb.values, parents)


# ---------------------------------------------------------------------------
# Consistency detection + tight-edge repair
# ---------------------------------------------------------------------------
class TestRepair:
    def test_detects_pointer_cycle(self):
        parents = np.full((4, 4), W.NO_VERTEX, dtype=np.int32)
        parents[0, 1] = 0
        parents[0, 2] = 3   # 2 <- 3 <- 2: cycle off the root
        parents[0, 3] = 2
        ok = W.consistent_parent_rows(parents)
        assert not ok[0]
        assert ok[1] and ok[2] and ok[3]

    def test_rebuild_row_layers_tight_edges(self):
        alg = get_algebra("widest-path")
        adj = random_adjacency(20, 9, "widest-path")
        prepared = alg.prepare_adjacency(adj)
        closure = semiring_closure(adj, alg)
        row = W.rebuild_parent_row(0, closure, prepared, alg)
        parents = np.full(closure.shape, W.NO_VERTEX, dtype=np.int32)
        parents[0] = row
        zero = alg.zero_like(closure.dtype)
        for j in range(20):
            if j == 0 or closure[0, j] == zero:
                continue
            path = W.reconstruct_path(parents, 0, j)
            fold = W.path_weight(prepared, path, alg)
            assert np.isclose(float(fold), float(closure[0, j]))

    def test_repair_only_touches_bad_rows(self):
        alg = get_algebra("shortest-path")
        adj = random_adjacency(12, 1, "shortest-path")
        prepared = alg.prepare_adjacency(adj)
        wb = W.witness_matrix(prepared, alg)
        floyd_warshall_inplace(wb, alg)
        before = wb.parents.copy()
        parents, repaired = W.repair_parents(wb.values, wb.parents, prepared, alg)
        assert repaired == 0
        assert np.array_equal(parents, before)

    def test_repair_fixes_injected_cycle(self):
        alg = get_algebra("reachability")
        adj = random_adjacency(15, 4, "reachability")
        prepared = alg.prepare_adjacency(adj)
        wb = W.witness_matrix(prepared, alg)
        floyd_warshall_inplace(wb, alg)
        # sabotage one row with a cycle among reachable vertices
        reachable = np.flatnonzero(wb.values[0] & (np.arange(15) != 0))
        if reachable.size >= 2:
            a, b = int(reachable[0]), int(reachable[1])
            wb.parents[0, a] = b
            wb.parents[0, b] = a
        parents, repaired = W.repair_parents(wb.values, wb.parents, prepared, alg)
        assert repaired >= 1
        assert_paths_valid(alg, prepared, wb.values, parents)


# ---------------------------------------------------------------------------
# Reconstruction + folding edge cases
# ---------------------------------------------------------------------------
class TestReconstruction:
    def test_trivial_and_error_cases(self):
        parents = np.full((3, 3), W.NO_VERTEX, dtype=np.int32)
        assert W.reconstruct_path(parents, 1, 1) == [1]
        with pytest.raises(SolverError):
            W.reconstruct_path(parents, 0, 2)
        with pytest.raises(ValidationError):
            W.reconstruct_path(parents, 0, 9)

    def test_cycle_guard(self):
        parents = np.full((3, 3), W.NO_VERTEX, dtype=np.int32)
        parents[0, 1] = 2
        parents[0, 2] = 1
        with pytest.raises(SolverError):
            W.reconstruct_path(parents, 0, 1)

    def test_path_weight_rejects_non_edges(self):
        alg = get_algebra("shortest-path")
        prepared = alg.prepare_adjacency(
            np.array([[0.0, 1.0, np.inf],
                      [1.0, 0.0, np.inf],
                      [np.inf, np.inf, 0.0]]))
        assert W.path_weight(prepared, [0, 1], alg) == 1.0
        assert W.path_weight(prepared, [2], alg) == 0.0
        with pytest.raises(SolverError):
            W.path_weight(prepared, [0, 2], alg)


# ---------------------------------------------------------------------------
# Block decomposition / assembly with witnesses
# ---------------------------------------------------------------------------
class TestWitnessBlocks:
    def test_matrix_roundtrip_through_witnessed_blocks(self):
        alg = get_algebra("shortest-path")
        prepared = alg.prepare_adjacency(random_adjacency(14, 6, "shortest-path"))
        records = list(matrix_to_blocks(prepared, 5, upper_only=True,
                                        witness=True, algebra=alg))
        assert all(W.is_witnessed(blk) for _, blk in records)
        values, parents = W.witness_blocks_to_matrices(
            records, 14, 5, symmetric=True, fill=np.inf, dtype=np.float64)
        assert np.array_equal(values, prepared)
        wb = W.witness_matrix(prepared, alg)
        assert np.array_equal(parents, wb.parents)
        # blocks_to_matrix unwraps witnessed payloads to their values
        assert np.array_equal(
            blocks_to_matrix(records, 14, 5, symmetric=True), prepared)

    def test_witness_blocks_reject_packed_storage(self):
        alg = get_algebra("reachability")
        prepared = alg.prepare_adjacency(random_adjacency(8, 0, "reachability"))
        with pytest.raises(ValidationError):
            list(matrix_to_blocks(prepared, 4, witness=True, storage="packed",
                                  algebra=alg))

    def test_blocked_matrix_witnessed_mirror_is_readonly(self):
        alg = get_algebra("shortest-path")
        prepared = alg.prepare_adjacency(random_adjacency(10, 2, "shortest-path"))
        bm = BlockedMatrix.from_matrix(prepared, 4, witness=True, algebra=alg)
        assert bm.witness
        mirror = bm.get_block(2, 0)  # transposed view of stored (0, 2)
        assert W.is_witnessed(mirror)
        with pytest.raises(ValueError):
            mirror.values[0, 0] = 1.0
        stored = bm.get_block(0, 2)
        assert np.array_equal(mirror.parents, stored.succs.T)
        values, parents = bm.to_matrices(fill=np.inf)
        assert np.array_equal(values, prepared)
        del parents

    def test_blocked_matrix_witness_type_enforcement(self):
        alg = get_algebra("shortest-path")
        prepared = alg.prepare_adjacency(random_adjacency(8, 3, "shortest-path"))
        bm = BlockedMatrix.from_matrix(prepared, 4, witness=True, algebra=alg)
        with pytest.raises(ValidationError):
            bm.set_block(0, 0, np.zeros((4, 4)))
        plain = BlockedMatrix.from_matrix(prepared, 4)
        with pytest.raises(ValidationError):
            plain.set_block(0, 0, bm.get_block(0, 0))
        with pytest.raises(ValidationError):
            plain.to_matrices(fill=np.inf)

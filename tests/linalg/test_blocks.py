"""Tests for the 2D block decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.blocks import (
    BlockedMatrix,
    all_block_ids,
    block_of_index,
    block_range,
    block_shape,
    blocks_to_matrix,
    matrix_to_blocks,
    num_blocks,
    upper_triangular_block_ids,
)


class TestGeometry:
    @pytest.mark.parametrize("n,b,q", [(16, 4, 4), (17, 4, 5), (16, 16, 1), (5, 2, 3), (1, 1, 1)])
    def test_num_blocks(self, n, b, q):
        assert num_blocks(n, b) == q

    def test_block_range_interior_and_edge(self):
        assert block_range(0, 4, 10) == slice(0, 4)
        assert block_range(2, 4, 10) == slice(8, 10)

    def test_block_range_out_of_bounds(self):
        with pytest.raises(ValidationError):
            block_range(3, 4, 10)

    def test_block_of_index(self):
        assert block_of_index(0, 4) == 0
        assert block_of_index(7, 4) == 1
        assert block_of_index(8, 4) == 2

    def test_block_shape_edge_block(self):
        assert block_shape((2, 2), 4, 10) == (2, 2)
        assert block_shape((0, 2), 4, 10) == (4, 2)

    def test_upper_triangular_ids_count(self):
        ids = list(upper_triangular_block_ids(4))
        assert len(ids) == 10
        assert all(i <= j for i, j in ids)

    def test_all_ids_count(self):
        assert len(list(all_block_ids(4))) == 16


class TestRoundTrip:
    @pytest.mark.parametrize("n,b", [(12, 4), (13, 4), (16, 16), (7, 3), (20, 1)])
    def test_upper_only_round_trip_symmetric(self, n, b):
        adj = erdos_renyi_adjacency(n, seed=n + b)
        blocks = list(matrix_to_blocks(adj, b, upper_only=True))
        rebuilt = blocks_to_matrix(blocks, n, b, symmetric=True)
        assert np.array_equal(rebuilt, adj)

    def test_full_round_trip(self):
        adj = erdos_renyi_adjacency(10, seed=3)
        blocks = list(matrix_to_blocks(adj, 3, upper_only=False))
        rebuilt = blocks_to_matrix(blocks, 10, 3, symmetric=False)
        assert np.array_equal(rebuilt, adj)

    def test_upper_only_produces_upper_keys(self):
        adj = erdos_renyi_adjacency(12, seed=4)
        keys = [key for key, _ in matrix_to_blocks(adj, 4, upper_only=True)]
        assert all(i <= j for i, j in keys)
        assert len(keys) == 6

    def test_blocks_are_copies(self):
        adj = erdos_renyi_adjacency(8, seed=5)
        blocks = dict(matrix_to_blocks(adj, 4))
        blocks[(0, 0)][0, 1] = -99.0
        assert adj[0, 1] != -99.0

    def test_wrong_block_shape_rejected(self):
        with pytest.raises(ValidationError):
            blocks_to_matrix([((0, 0), np.zeros((2, 2)))], n=8, block_size=4)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(1, 10), st.integers(0, 100_000))
    def test_property_round_trip(self, n, b, seed):
        b = min(b, n)
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.3)
        rebuilt = blocks_to_matrix(matrix_to_blocks(adj, b), n, b)
        assert np.array_equal(rebuilt, adj)


class TestBlockedMatrix:
    def test_from_matrix_and_back(self):
        adj = erdos_renyi_adjacency(14, seed=6)
        bm = BlockedMatrix.from_matrix(adj, 4)
        assert bm.q == 4
        assert np.array_equal(bm.to_matrix(), adj)

    def test_get_block_transposes_lower_triangle(self):
        adj = erdos_renyi_adjacency(12, seed=7)
        bm = BlockedMatrix.from_matrix(adj, 4)
        assert np.array_equal(bm.get_block(2, 0), bm.get_block(0, 2).T)
        assert np.array_equal(bm.get_block(2, 0), adj[8:12, 0:4])

    def test_get_missing_block_raises(self):
        bm = BlockedMatrix(n=8, block_size=4, blocks={}, symmetric=True)
        with pytest.raises(KeyError):
            bm.get_block(0, 1)

    def test_mirror_lookup_returns_readonly_view(self):
        # Regression: the transposed view of the stored (j, i) block shares
        # memory — writing through it used to silently corrupt block (0, 2).
        adj = erdos_renyi_adjacency(12, seed=7)
        bm = BlockedMatrix.from_matrix(adj, 4)
        stored_before = bm.get_block(0, 2).copy()
        mirror = bm.get_block(2, 0)
        assert not mirror.flags.writeable
        with pytest.raises(ValueError):
            mirror[0, 0] = -99.0
        assert np.array_equal(bm.get_block(0, 2), stored_before)

    def test_direct_lookup_stays_writable(self):
        adj = erdos_renyi_adjacency(12, seed=7)
        bm = BlockedMatrix.from_matrix(adj, 4)
        block = bm.get_block(0, 2)
        assert block.flags.writeable  # mutating the stored block is intended

    def test_float32_blocks_preserved(self):
        adj = erdos_renyi_adjacency(8, seed=13).astype(np.float32)
        bm = BlockedMatrix.from_matrix(adj, 4)
        assert all(b.dtype == np.float32 for b in bm.blocks.values())
        assert bm.to_matrix().dtype == np.float32

    def test_set_block_normalizes_to_upper(self):
        adj = erdos_renyi_adjacency(8, seed=8)
        bm = BlockedMatrix.from_matrix(adj, 4)
        new_block = np.full((4, 4), 2.0)
        bm.set_block(1, 0, new_block)
        assert np.array_equal(bm.get_block(0, 1), new_block.T)

    def test_set_block_shape_check(self):
        bm = BlockedMatrix.from_matrix(erdos_renyi_adjacency(8, seed=9), 4)
        with pytest.raises(ValidationError):
            bm.set_block(0, 0, np.zeros((2, 2)))

    def test_block_ids_sorted(self):
        bm = BlockedMatrix.from_matrix(erdos_renyi_adjacency(12, seed=10), 4)
        assert bm.block_ids() == sorted(bm.block_ids())

    def test_nbytes_positive(self):
        bm = BlockedMatrix.from_matrix(erdos_renyi_adjacency(8, seed=11), 4)
        assert bm.nbytes() == sum(b.nbytes for b in bm.blocks.values())

    def test_equality(self):
        adj = erdos_renyi_adjacency(8, seed=12)
        a = BlockedMatrix.from_matrix(adj, 4)
        b = BlockedMatrix.from_matrix(adj, 4)
        c = BlockedMatrix.from_matrix(adj, 2)
        assert a == b
        assert a != c
        assert a != "not a matrix"

"""Tests for the Floyd-Warshall kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.graph.generators import erdos_renyi_adjacency, grid_adjacency, path_adjacency
from repro.linalg.kernels import (
    blocked_floyd_warshall_inplace,
    floyd_warshall,
    floyd_warshall_inplace,
    floyd_warshall_scipy,
    fw_rank1_update,
    min_plus_then_min,
)
from repro.linalg.semiring import minplus_product


class TestFloydWarshall:
    def test_path_graph_distances(self):
        dist = floyd_warshall(path_adjacency(6))
        for i in range(6):
            for j in range(6):
                assert dist[i, j] == abs(i - j)

    def test_grid_graph_distances_are_manhattan(self):
        rows, cols = 3, 4
        dist = floyd_warshall(grid_adjacency(rows, cols))
        for a in range(rows * cols):
            for b in range(rows * cols):
                ra, ca = divmod(a, cols)
                rb, cb = divmod(b, cols)
                assert dist[a, b] == abs(ra - rb) + abs(ca - cb)

    def test_matches_scipy(self):
        adj = erdos_renyi_adjacency(40, seed=1)
        assert np.allclose(floyd_warshall(adj), floyd_warshall_scipy(adj))

    def test_disconnected_pairs_stay_infinite(self):
        adj = np.full((4, 4), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = adj[1, 0] = 1.0
        dist = floyd_warshall(adj)
        assert np.isinf(dist[0, 2])
        assert dist[0, 1] == 1.0

    def test_input_not_modified(self):
        adj = erdos_renyi_adjacency(10, seed=2)
        before = adj.copy()
        floyd_warshall(adj)
        assert np.array_equal(adj, before)

    def test_inplace_modifies_argument(self):
        adj = path_adjacency(5)
        out = floyd_warshall_inplace(adj)
        assert out is adj
        assert adj[0, 4] == 4.0

    def test_inplace_rejects_non_native_dtype(self):
        # Regression: np.asarray(int_array, float64) re-allocates, so the
        # caller's array was left stale while a hidden copy got mutated.
        adj = np.zeros((4, 4), dtype=np.int32)
        with pytest.raises(ValidationError):
            floyd_warshall_inplace(adj)

    def test_inplace_mutates_float32_in_place(self):
        adj = path_adjacency(5).astype(np.float32)
        out = floyd_warshall_inplace(adj)
        assert out is adj
        assert adj.dtype == np.float32
        assert adj[0, 4] == 4.0

    def test_inplace_mutates_noncontiguous_view_in_place(self):
        big = np.full((8, 8), np.inf)
        np.fill_diagonal(big, 0.0)
        big[1:6, 1:6] = path_adjacency(5)
        view = big[1:6, 1:6]
        out = floyd_warshall_inplace(view)
        assert out.base is big
        assert big[1, 5] == 4.0

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            floyd_warshall_inplace(np.zeros((2, 3)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 100_000))
    def test_property_triangle_inequality(self, n, seed):
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.4)
        dist = floyd_warshall(adj)
        # d(i,j) <= d(i,k) + d(k,j) for all triples (sampled densely for small n).
        for k in range(n):
            candidate = dist[:, k, None] + dist[None, k, :]
            assert np.all(dist <= candidate + 1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 100_000))
    def test_property_idempotent(self, n, seed):
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.3)
        once = floyd_warshall(adj)
        twice = floyd_warshall(once)
        assert np.allclose(once, twice)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 100_000))
    def test_property_symmetric_input_symmetric_output(self, n, seed):
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.35)
        dist = floyd_warshall(adj)
        assert np.allclose(dist, dist.T)


class TestRank1Update:
    def test_matches_definition(self):
        rng = np.random.default_rng(3)
        block = rng.uniform(1, 10, (4, 5))
        col = rng.uniform(1, 10, 4)
        row = rng.uniform(1, 10, 5)
        out = fw_rank1_update(block, col, row)
        expected = np.minimum(block, col[:, None] + row[None, :])
        assert np.allclose(out, expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            fw_rank1_update(np.zeros((3, 3)), np.zeros(2), np.zeros(3))

    def test_inf_pivot_is_noop(self):
        block = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = fw_rank1_update(block, np.full(2, np.inf), np.full(2, np.inf))
        assert np.array_equal(out, block)

    def test_full_fw_via_rank1_updates(self):
        # Applying the rank-1 update for every pivot reproduces Floyd-Warshall.
        adj = erdos_renyi_adjacency(16, seed=4)
        dist = adj.copy()
        for k in range(16):
            dist = fw_rank1_update(dist, dist[:, k], dist[k, :])
        assert np.allclose(dist, floyd_warshall(adj))


class TestMinPlusThenMin:
    def test_never_increases(self):
        rng = np.random.default_rng(5)
        a = rng.uniform(1, 10, (6, 6))
        b = rng.uniform(1, 10, (6, 6))
        out = min_plus_then_min(a, b)
        assert np.all(out <= a + 1e-12)

    def test_equals_min_of_product_and_block(self):
        rng = np.random.default_rng(6)
        a = rng.uniform(1, 10, (5, 5))
        b = rng.uniform(1, 10, (5, 5))
        assert np.allclose(min_plus_then_min(a, b),
                           np.minimum(a, minplus_product(a, b)))


class TestBlockedFloydWarshall:
    @pytest.mark.parametrize("n,b", [(12, 3), (16, 4), (20, 7), (15, 15), (9, 4)])
    def test_matches_unblocked(self, n, b):
        adj = erdos_renyi_adjacency(n, seed=n * 31 + b)
        expected = floyd_warshall(adj)
        out = blocked_floyd_warshall_inplace(adj.copy(), b)
        assert np.allclose(out, expected)

    def test_block_size_one(self):
        adj = erdos_renyi_adjacency(8, seed=9)
        assert np.allclose(blocked_floyd_warshall_inplace(adj.copy(), 1),
                           floyd_warshall(adj))

    def test_block_larger_than_n_rejected(self):
        with pytest.raises(ValidationError):
            blocked_floyd_warshall_inplace(np.zeros((4, 4)), 8)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 24), st.integers(1, 8), st.integers(0, 100_000))
    def test_property_block_size_invariance(self, n, b, seed):
        b = min(b, n)
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.3)
        assert np.allclose(blocked_floyd_warshall_inplace(adj.copy(), b),
                           floyd_warshall(adj))

"""Tests for the packed-bitset popcount metric and its cache invalidation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.bitset import (PackedBlock, packed_and,
                                 packed_floyd_warshall_inplace, packed_or,
                                 packed_product, packed_rank1_update,
                                 popcount_words)


def random_bits(rng, rows, cols, density=0.3):
    return rng.random((rows, cols)) < density


class TestPopcountWords:
    @settings(max_examples=40, deadline=None)
    @given(rows=st.integers(1, 40), cols=st.integers(1, 150),
           density=st.floats(0.0, 1.0), seed=st.integers(0, 2**31 - 1))
    def test_exact_against_dense_sum(self, rows, cols, density, seed):
        rng = np.random.default_rng(seed)
        bits = random_bits(rng, rows, cols, density)
        block = PackedBlock.from_dense(bits)
        assert popcount_words(block.words) == int(bits.sum())

    def test_empty_and_saturated(self):
        assert popcount_words(np.zeros(4, dtype=np.uint64)) == 0
        assert popcount_words(np.full(4, np.uint64(2**64 - 1))) == 4 * 64

    def test_matches_python_bit_count(self):
        words = np.array([0, 1, 0xF0F0, 2**63], dtype=np.uint64)
        assert popcount_words(words) == sum(int(w).bit_count() for w in words)


class TestBitsSetProperty:
    def test_bits_set_and_density(self):
        bits = np.zeros((4, 70), dtype=bool)
        bits[0, :7] = True
        block = PackedBlock.from_dense(bits)
        assert block.bits_set == 7
        assert block.density == pytest.approx(7 / (4 * 70))

    def test_empty_block_density_is_zero(self):
        block = PackedBlock.from_dense(np.zeros((0, 0), dtype=bool))
        assert block.bits_set == 0
        assert block.density == 0.0

    def test_popcount_is_cached_until_invalidated(self):
        block = PackedBlock.from_dense(np.eye(8, dtype=bool))
        assert block.bits_set == 8
        # A raw in-place mutation must be followed by invalidate_popcount();
        # until then the cached value is (deliberately) served.
        block.words[0] = np.uint64(0)
        assert block.bits_set == 8
        block.invalidate_popcount()
        assert block.bits_set == 7

    def test_copy_propagates_the_cached_count(self):
        block = PackedBlock.from_dense(np.eye(8, dtype=bool))
        assert block.bits_set == 8
        clone = block.copy()
        assert clone._bits_set == 8
        clone.words[0] = np.uint64(0)
        clone.invalidate_popcount()
        assert clone.bits_set == 7
        assert block.bits_set == 8                # the original is untouched


class TestKernelInvalidation:
    """Every mutating kernel must leave ``bits_set`` consistent afterwards."""

    def setup_blocks(self, seed=0, rows=12, cols=70):
        rng = np.random.default_rng(seed)
        a = random_bits(rng, rows, cols)
        b = random_bits(rng, rows, cols)
        return a, b

    def test_packed_or_and_with_out(self):
        a, b = self.setup_blocks()
        out = PackedBlock.from_dense(np.zeros_like(a))
        assert out.bits_set == 0                  # prime the cache
        packed_or(PackedBlock.from_dense(a), PackedBlock.from_dense(b), out=out)
        assert out.bits_set == int((a | b).sum())
        packed_and(PackedBlock.from_dense(a), PackedBlock.from_dense(b), out=out)
        assert out.bits_set == int((a & b).sum())

    @pytest.mark.parametrize("density", [0.05, 0.6])
    def test_packed_product_accumulate(self, density):
        """Both product paths (selector and bit-expansion) invalidate out."""
        rng = np.random.default_rng(1)
        a = random_bits(rng, 10, 66, density)
        b = random_bits(rng, 66, 20, 0.3)
        out = PackedBlock.from_dense(np.zeros((10, 20), dtype=bool))
        assert out.bits_set == 0
        packed_product(PackedBlock.from_dense(a), PackedBlock.from_dense(b),
                       out=out)
        assert out.bits_set == int((a @ b).astype(bool).sum())

    def test_floyd_warshall_inplace(self):
        rng = np.random.default_rng(2)
        bits = random_bits(rng, 16, 16, 0.2)
        np.fill_diagonal(bits, True)
        block = PackedBlock.from_dense(bits)
        assert block.bits_set == int(bits.sum())  # prime the cache
        packed_floyd_warshall_inplace(block)
        assert block.bits_set == int(block.to_dense().sum())

    def test_rank1_update(self):
        rng = np.random.default_rng(3)
        bits = random_bits(rng, 8, 66, 0.2)
        block = PackedBlock.from_dense(bits)
        assert block.bits_set == int(bits.sum())
        col = np.ones(8, dtype=bool)
        row = random_bits(rng, 1, 66, 0.5)[0]
        out = packed_rank1_update(block, col, row)
        assert out.bits_set == int((bits | np.outer(col, row)).sum())

"""Dtype-scaled column chunking of the semiring product kernel."""

import numpy as np
import pytest

from repro.linalg.semiring import (DEFAULT_CHUNK, auto_chunk, chunk_for_dtype,
                                   semiring_product)


def test_chunk_scales_inversely_with_itemsize():
    assert chunk_for_dtype("float64") == DEFAULT_CHUNK          # 64: unchanged
    assert chunk_for_dtype("float32") == 2 * DEFAULT_CHUNK      # 128
    assert chunk_for_dtype("bool") == 8 * DEFAULT_CHUNK         # 512
    # Same byte footprint per chunk column across dtypes.
    assert chunk_for_dtype("float32") * 4 == chunk_for_dtype("float64") * 8
    assert chunk_for_dtype("bool") * 1 == chunk_for_dtype("float64") * 8


def test_auto_chunk_caps_large_temporaries():
    # Small blocks: pure dtype scaling, the cap never binds.
    assert auto_chunk("float64", 512, 512) == DEFAULT_CHUNK
    assert auto_chunk("bool", 96, 96) == 8 * DEFAULT_CHUNK
    # Big blocks: the (m, k, chunk) temporary is capped (measured sweet spot).
    assert auto_chunk("float64", 1024, 1024) < DEFAULT_CHUNK
    assert auto_chunk("bool", 1024, 1024) < 8 * DEFAULT_CHUNK
    assert auto_chunk("float64", 1 << 20, 1 << 20) >= 1        # never zero


@pytest.mark.parametrize("dtype", ["float64", "float32", "bool"])
def test_auto_chunk_product_matches_explicit(dtype):
    rng = np.random.default_rng(8)
    if dtype == "bool":
        a = rng.random((40, 40)) < 0.2
        algebra = "reachability"
    else:
        a = rng.random((40, 40)).astype(dtype)
        algebra = "shortest-path"
    auto = semiring_product(a, a, algebra)                      # chunk=None
    explicit = semiring_product(a, a, algebra, chunk=1)
    assert auto.dtype == np.dtype(dtype)
    assert np.array_equal(auto, explicit)

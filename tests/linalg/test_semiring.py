"""Tests for the (min, +) semiring kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.linalg.semiring import (
    elementwise_min,
    minplus_closure_iterations,
    minplus_power,
    minplus_product,
    minplus_square,
)


def naive_minplus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    m, k = a.shape
    n = b.shape[1]
    out = np.full((m, n), np.inf)
    for i in range(m):
        for j in range(n):
            out[i, j] = np.min(a[i, :] + b[:, j])
    return out


def random_weight_matrix(rng, rows, cols, inf_prob=0.3):
    mat = rng.uniform(0.5, 10.0, size=(rows, cols))
    mask = rng.random((rows, cols)) < inf_prob
    mat[mask] = np.inf
    return mat


class TestMinplusProduct:
    def test_matches_naive_small(self):
        rng = np.random.default_rng(0)
        a = random_weight_matrix(rng, 7, 5)
        b = random_weight_matrix(rng, 5, 9)
        assert np.allclose(minplus_product(a, b), naive_minplus(a, b))

    def test_rectangular_shapes(self):
        rng = np.random.default_rng(1)
        a = random_weight_matrix(rng, 3, 8)
        b = random_weight_matrix(rng, 8, 2)
        out = minplus_product(a, b)
        assert out.shape == (3, 2)

    def test_identity_behaviour(self):
        # The min-plus identity has 0 on the diagonal and inf elsewhere.
        rng = np.random.default_rng(2)
        a = random_weight_matrix(rng, 6, 6)
        ident = np.full((6, 6), np.inf)
        np.fill_diagonal(ident, 0.0)
        assert np.allclose(minplus_product(a, ident), a)
        assert np.allclose(minplus_product(ident, a), a)

    def test_inf_propagation(self):
        a = np.array([[np.inf, np.inf], [np.inf, np.inf]])
        b = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = minplus_product(a, b)
        assert np.all(np.isinf(out))

    def test_chunking_does_not_change_result(self):
        rng = np.random.default_rng(3)
        a = random_weight_matrix(rng, 20, 20)
        full = minplus_product(a, a, chunk=64)
        tiny = minplus_product(a, a, chunk=1)
        assert np.array_equal(full, tiny)

    def test_out_parameter(self):
        rng = np.random.default_rng(4)
        a = random_weight_matrix(rng, 5, 5)
        out = np.empty((5, 5))
        result = minplus_product(a, a, out=out)
        assert result is out

    def test_wrong_out_shape_rejected(self):
        a = np.zeros((3, 3))
        with pytest.raises(ValidationError):
            minplus_product(a, a, out=np.empty((2, 2)))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            minplus_product(np.zeros((3, 4)), np.zeros((5, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValidationError):
            minplus_product(np.zeros(3), np.zeros((3, 3)))

    def test_invalid_chunk_rejected(self):
        a = np.zeros((2, 2))
        with pytest.raises(ValidationError):
            minplus_product(a, a, chunk=0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 8), st.integers(2, 8), st.integers(2, 8), st.integers(0, 10_000))
    def test_property_matches_naive(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = random_weight_matrix(rng, m, k)
        b = random_weight_matrix(rng, k, n)
        assert np.allclose(minplus_product(a, b), naive_minplus(a, b))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 7), st.integers(0, 10_000))
    def test_property_associativity(self, n, seed):
        rng = np.random.default_rng(seed)
        a = random_weight_matrix(rng, n, n)
        b = random_weight_matrix(rng, n, n)
        c = random_weight_matrix(rng, n, n)
        left = minplus_product(minplus_product(a, b), c)
        right = minplus_product(a, minplus_product(b, c))
        assert np.allclose(left, right)


class TestElementwiseMin:
    def test_basic(self):
        a = np.array([[1.0, 5.0]])
        b = np.array([[2.0, 3.0]])
        assert np.array_equal(elementwise_min(a, b), [[1.0, 3.0]])

    def test_inf_handling(self):
        a = np.array([[np.inf]])
        b = np.array([[4.0]])
        assert elementwise_min(a, b)[0, 0] == 4.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            elementwise_min(np.zeros((2, 2)), np.zeros((3, 3)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 10_000))
    def test_property_commutative_idempotent(self, n, seed):
        rng = np.random.default_rng(seed)
        a = random_weight_matrix(rng, n, n)
        b = random_weight_matrix(rng, n, n)
        assert np.array_equal(elementwise_min(a, b), elementwise_min(b, a))
        assert np.array_equal(elementwise_min(a, a), a)


class TestMinplusPower:
    def test_power_yields_shortest_paths(self):
        # Path graph 0-1-2-3 with unit weights.
        adj = np.full((4, 4), np.inf)
        np.fill_diagonal(adj, 0.0)
        for i in range(3):
            adj[i, i + 1] = adj[i + 1, i] = 1.0
        closure = minplus_power(adj, 4)
        assert closure[0, 3] == 3.0
        assert closure[3, 0] == 3.0

    def test_square_keeps_existing_paths(self):
        adj = np.full((3, 3), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = adj[1, 0] = 2.0
        squared = minplus_square(adj)
        assert squared[0, 1] == 2.0

    def test_invalid_exponent(self):
        with pytest.raises(ValidationError):
            minplus_power(np.zeros((2, 2)), 0)


class TestClosureIterations:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (3, 1), (4, 2), (5, 2),
                                            (9, 3), (262144, 18)])
    def test_values(self, n, expected):
        assert minplus_closure_iterations(n) == expected

    def test_invalid_n(self):
        with pytest.raises(ValidationError):
            minplus_closure_iterations(0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 2000))
    def test_property_sufficient_for_paths(self, n):
        # 2^iterations must be at least n - 1 (the longest possible shortest path).
        iterations = minplus_closure_iterations(n)
        assert 2 ** iterations >= n - 1
        assert 2 ** (iterations - 1) < n - 1

"""Tests for the simulated message-passing communicator."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.mpi.comm import CommStats, run_spmd


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def program(comm):
            if comm.get_rank() == 0:
                comm.send({"x": 1}, dest=1)
                return None
            return comm.recv(source=0)

        results, stats = run_spmd(2, program)
        assert results[1] == {"x": 1}
        assert stats.messages == 1

    def test_numpy_payloads(self):
        def program(comm):
            if comm.get_rank() == 0:
                comm.send(np.arange(10), dest=1)
                return None
            return comm.recv(source=0)

        results, stats = run_spmd(2, program)
        assert np.array_equal(results[1], np.arange(10))
        assert stats.bytes_sent == 80

    def test_tags_keep_messages_apart(self):
        def program(comm):
            if comm.get_rank() == 0:
                comm.send("second", dest=1, tag=2)
                comm.send("first", dest=1, tag=1)
                return None
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=2)
            return (first, second)

        results, _ = run_spmd(2, program)
        assert results[1] == ("first", "second")

    def test_invalid_destination(self):
        def program(comm):
            if comm.get_rank() == 0:
                comm.send("x", dest=99)
            return None

        with pytest.raises(ConfigurationError):
            run_spmd(2, program)


class TestCollectives:
    def test_bcast(self):
        def program(comm):
            value = [1, 2, 3] if comm.get_rank() == 0 else None
            return comm.bcast(value, root=0)

        results, stats = run_spmd(4, program)
        assert all(r == [1, 2, 3] for r in results)
        assert stats.broadcasts == 1

    def test_bcast_from_nonzero_root(self):
        def program(comm):
            value = comm.get_rank() if comm.get_rank() == 2 else None
            return comm.bcast(value, root=2)

        results, _ = run_spmd(3, program)
        assert results == [2, 2, 2]

    def test_gather(self):
        def program(comm):
            return comm.gather(comm.get_rank() ** 2, root=0)

        results, _ = run_spmd(4, program)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allgather(self):
        def program(comm):
            return comm.allgather(comm.get_rank() + 10)

        results, stats = run_spmd(3, program)
        assert all(r == [10, 11, 12] for r in results)
        assert stats.allgathers == 3  # each rank records its contribution

    def test_barrier_counts(self):
        def program(comm):
            comm.barrier()
            return comm.get_size()

        results, stats = run_spmd(4, program)
        assert results == [4, 4, 4, 4]
        assert stats.barriers == 4

    def test_repeated_collectives(self):
        def program(comm):
            total = 0
            for round_id in range(5):
                value = round_id if comm.get_rank() == round_id % 2 else None
                total += comm.bcast(value, root=round_id % 2)
            return total

        results, _ = run_spmd(2, program)
        assert results == [10, 10]


class TestRunSpmd:
    def test_single_rank(self):
        results, _ = run_spmd(1, lambda comm: comm.get_size())
        assert results == [1]

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            run_spmd(0, lambda comm: None)

    def test_exception_propagates(self):
        def program(comm):
            if comm.get_rank() == 1:
                raise ValueError("rank 1 exploded")
            return comm.get_rank()

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(2, program)

    def test_stats_as_dict(self):
        stats = CommStats()
        stats.record_message(10)
        d = stats.as_dict()
        assert d["messages"] == 1 and d["bytes_sent"] == 10

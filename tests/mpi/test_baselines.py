"""Tests for the MPI-style baselines: FW-2D-GbE and DC (Solomonik divide & conquer)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.graph.generators import erdos_renyi_adjacency, grid_adjacency, path_adjacency
from repro.mpi.divide_conquer import dc_apsp, dc_apsp_with_stats
from repro.mpi.fw2d import fw2d_mpi_apsp
from repro.sequential.floyd_warshall import floyd_warshall_reference


class TestFw2dMpi:
    @pytest.mark.parametrize("num_ranks", [1, 4, 9, 16])
    def test_matches_reference(self, num_ranks):
        adj = erdos_renyi_adjacency(36, seed=8)
        result = fw2d_mpi_apsp(adj, num_ranks=num_ranks)
        assert np.allclose(result, floyd_warshall_reference(adj))

    def test_grid_graph(self):
        adj = grid_adjacency(4, 4)
        assert np.allclose(fw2d_mpi_apsp(adj, num_ranks=4),
                           floyd_warshall_reference(adj))

    def test_directed_input_supported(self):
        rng = np.random.default_rng(3)
        n = 16
        adj = np.full((n, n), np.inf)
        np.fill_diagonal(adj, 0.0)
        mask = rng.random((n, n)) < 0.3
        adj[mask] = rng.uniform(1, 5, mask.sum())
        np.fill_diagonal(adj, 0.0)
        from scipy.sparse.csgraph import floyd_warshall as scipy_fw
        assert np.allclose(fw2d_mpi_apsp(adj, num_ranks=4), scipy_fw(adj, directed=True))

    def test_non_square_rank_count_rejected(self):
        with pytest.raises(ConfigurationError):
            fw2d_mpi_apsp(path_adjacency(8), num_ranks=3)

    def test_grid_must_divide_n(self):
        with pytest.raises(ConfigurationError):
            fw2d_mpi_apsp(path_adjacency(9), num_ranks=4)

    def test_communication_stats_returned(self):
        adj = erdos_renyi_adjacency(16, seed=9)
        _, stats = fw2d_mpi_apsp(adj, num_ranks=4, return_stats=True)
        # Every iteration broadcasts a row and a column segment to g-1 peers
        # along each grid dimension: 2 * n * g * (g - 1) point-to-point sends.
        assert stats.messages == 2 * 16 * 2 * 1
        assert stats.bytes_sent > 0

    def test_single_rank_sends_nothing(self):
        adj = erdos_renyi_adjacency(12, seed=10)
        _, stats = fw2d_mpi_apsp(adj, num_ranks=1, return_stats=True)
        assert stats.messages == 0

    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 10_000))
    def test_property_matches_reference(self, half_n, seed):
        n = 2 * half_n
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.4)
        assert np.allclose(fw2d_mpi_apsp(adj, num_ranks=4),
                           floyd_warshall_reference(adj))


class TestDivideConquer:
    @pytest.mark.parametrize("base_case", [1, 2, 8, 64])
    def test_matches_reference(self, base_case):
        adj = erdos_renyi_adjacency(33, seed=12)
        assert np.allclose(dc_apsp(adj, base_case=base_case),
                           floyd_warshall_reference(adj))

    def test_odd_sizes(self):
        adj = erdos_renyi_adjacency(21, seed=13)
        assert np.allclose(dc_apsp(adj, base_case=4), floyd_warshall_reference(adj))

    def test_directed_graph(self):
        rng = np.random.default_rng(14)
        n = 20
        adj = np.full((n, n), np.inf)
        np.fill_diagonal(adj, 0.0)
        mask = rng.random((n, n)) < 0.25
        adj[mask] = rng.uniform(1, 9, mask.sum())
        np.fill_diagonal(adj, 0.0)
        from scipy.sparse.csgraph import floyd_warshall as scipy_fw
        assert np.allclose(dc_apsp(adj, base_case=4), scipy_fw(adj, directed=True))

    def test_stats_reflect_recursion(self):
        adj = erdos_renyi_adjacency(32, seed=15)
        _, stats = dc_apsp_with_stats(adj, base_case=8)
        # Each level splits into two recursive closures (A then D), so two
        # levels of halving (32 -> 16 -> 8) yield 2^2 base cases.
        assert stats.base_cases == 4
        assert stats.multiplications > 0
        assert stats.max_depth == 2
        assert stats.multiply_volume > 0

    def test_base_case_equal_n_is_plain_fw(self):
        adj = erdos_renyi_adjacency(16, seed=16)
        dist, stats = dc_apsp_with_stats(adj, base_case=16)
        assert stats.base_cases == 1
        assert stats.multiplications == 0
        assert np.allclose(dist, floyd_warshall_reference(adj))

    def test_input_not_modified(self):
        adj = erdos_renyi_adjacency(16, seed=17)
        before = adj.copy()
        dc_apsp(adj, base_case=4)
        assert np.array_equal(adj, before)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 40), st.integers(1, 16), st.integers(0, 10_000))
    def test_property_matches_reference(self, n, base_case, seed):
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.3)
        assert np.allclose(dc_apsp(adj, base_case=base_case),
                           floyd_warshall_reference(adj))

"""Tests for the experiment harness (Figures 2/3, Tables 2/3, reporting)."""

import pytest

from repro.experiments import figure2, figure3, table2, table3_figure5
from repro.experiments.report import format_table, rows_to_csv


class TestFigure2:
    def test_measured_rows(self):
        rows = figure2.run_measured(block_sizes=(24, 32, 48), repeats=1)
        assert [r["block_size"] for r in rows] == [24, 32, 48]
        assert all(r["minplus_seconds"] > 0 for r in rows)
        assert all(r["floyd_warshall_seconds"] > 0 for r in rows)

    def test_measured_time_grows_with_block_size(self):
        rows = figure2.run_measured(block_sizes=(32, 128), repeats=1)
        assert rows[-1]["floyd_warshall_seconds"] > rows[0]["floyd_warshall_seconds"]
        assert rows[-1]["minplus_seconds"] > rows[0]["minplus_seconds"]

    def test_projected_rows_follow_cubic_model(self):
        rows = figure2.run_projected(block_sizes=(1000, 2000))
        assert rows[1]["floyd_warshall_seconds"] == pytest.approx(
            8 * rows[0]["floyd_warshall_seconds"])
        assert figure2.check_cubic_growth(rows)

    def test_check_cubic_growth_detects_non_cubic(self):
        rows = [{"block_size": 100, "floyd_warshall_seconds": 1.0},
                {"block_size": 200, "floyd_warshall_seconds": 1.0}]
        assert not figure2.check_cubic_growth(rows)

    def test_check_cubic_growth_trivial_cases(self):
        assert figure2.check_cubic_growth([])
        assert figure2.check_cubic_growth([{"block_size": 10, "floyd_warshall_seconds": 1.0}])


class TestFigure3:
    def test_partition_size_distribution_md_balanced(self):
        row = figure3.partition_size_distribution(131072, 1024, 2048, "MD")
        assert row["q"] == 128
        assert row["max_blocks"] - row["min_blocks"] <= 1

    def test_partition_size_distribution_ph_skewed(self):
        md = figure3.partition_size_distribution(131072, 1024, 2048, "MD")
        ph = figure3.partition_size_distribution(131072, 1024, 2048, "PH")
        assert ph["std_blocks"] > md["std_blocks"]
        assert ph["max_blocks"] > md["max_blocks"]

    def test_run_partition_distribution_rows(self):
        rows = figure3.run_partition_distribution(block_sizes=(1024, 2048))
        assert len(rows) == 4
        assert {r["partitioner"] for r in rows} == {"MD", "PH"}

    def test_projected_rows_cover_grid(self):
        rows = figure3.run_projected(block_sizes=(1024, 2048))
        assert len(rows) == 2 * 2 * 2 * 2
        assert all("total_seconds" in r for r in rows)

    def test_measured_small_sweep_correct(self):
        rows = figure3.run_measured(n=48, block_sizes=(12, 16), check_correctness=True)
        assert len(rows) == 2 * 2 * 2 * 2
        assert all(r["correct"] for r in rows)
        # IM shuffles, CB writes to shared storage instead.
        im_rows = [r for r in rows if r["solver"] == "blocked-im"]
        cb_rows = [r for r in rows if r["solver"] == "blocked-cb"]
        assert all(r["shuffle_bytes"] > 0 for r in im_rows)
        assert all(r["sharedfs_bytes"] > 0 for r in cb_rows)


class TestTable2:
    def test_projected_full_grid(self):
        rows = table2.run_projected(block_sizes=(1024,), solvers=("blocked-cb", "blocked-im"),
                                    partitioners=("MD",))
        assert len(rows) == 2
        for row in rows:
            assert row["iterations"] == 256
            assert row["projected_seconds"] == pytest.approx(
                row["single_seconds"] * row["iterations"])

    def test_projected_ordering_matches_paper(self):
        rows = table2.run_projected(block_sizes=(1024,), partitioners=("MD",))
        by_method = {r["method"]: r for r in rows}
        assert by_method["blocked-cb"]["projected_seconds"] < \
            by_method["repeated-squaring"]["projected_seconds"]
        assert by_method["blocked-cb"]["projected_seconds"] < \
            by_method["fw-2d"]["projected_seconds"]

    def test_measured_rows(self):
        rows = table2.run_measured(n=40, block_sizes=(8,),
                                   solvers=("blocked-cb", "blocked-im"))
        assert len(rows) == 2
        for row in rows:
            assert row["iterations"] == 5
            assert row["single_seconds"] > 0
            assert row["total_seconds"] >= row["single_seconds"]


class TestTable3Figure5:
    def test_projected_structure(self):
        rows = table3_figure5.run_projected(core_counts=(64, 1024))
        assert [r["p"] for r in rows] == [64, 1024]
        assert rows[0]["n"] == 64 * 256
        # IM fails only at the largest configuration (Table 3's "-" entry).
        assert rows[0]["blocked_im"] != "-"
        assert rows[1]["blocked_im"] == "-"
        assert rows[1]["gops_core_cb"] > 0

    def test_measured_weak_scaling_rows(self):
        rows = table3_figure5.run_measured(vertices_per_core=8, core_counts=(4, 8))
        assert len(rows) == 2
        assert all(r["all_correct"] for r in rows)
        assert rows[0]["n"] == 32 and rows[1]["n"] == 64


class TestReport:
    def test_format_table_alignment_and_title(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_table_bool_rendering(self):
        text = format_table([{"ok": True}])
        assert "yes" in text

    def test_rows_to_csv(self):
        csv = rows_to_csv([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert csv.splitlines() == ["x,y", "1,2", "3,4"]

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""


class TestCli:
    def test_table2_projected(self, capsys):
        from repro.experiments.cli import main
        assert main(["table2", "--mode", "projected"]) == 0
        out = capsys.readouterr().out
        assert "blocked-cb" in out and "repeated-squaring" in out

    def test_figure3_distribution_csv(self, capsys):
        from repro.experiments.cli import main
        assert main(["figure3", "--distribution", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("partitioner,")

    def test_table3_projected(self, capsys):
        from repro.experiments.cli import main
        assert main(["table3", "--mode", "projected"]) == 0
        assert "1024" in capsys.readouterr().out

    def test_solve_command_verifies(self, capsys):
        from repro.experiments.cli import main
        code = main(["solve", "--n", "40", "--solver", "blocked-cb", "--block-size", "8"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_figure2_measured(self, capsys):
        from repro.experiments.cli import main
        assert main(["figure2", "--mode", "measured"]) == 0
        assert "block_size" in capsys.readouterr().out

"""Tests for the serving CLI: ``apspark route``, ``apspark serve``, ``convert``."""

import pytest

from repro.experiments.cli import main

COMMON = ["--n", "32", "--block-size", "8"]


class TestRouteCommand:
    def test_flat_pairs_print_verified_lines(self, capsys):
        assert main(["route", "0", "5", "3", "9", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "route 0 -> 5" in out
        assert "route 3 -> 9" in out
        assert "MISMATCH" not in out

    def test_report_flag_appends_the_analytics_block(self, capsys):
        assert main(["route", "0", "5", *COMMON, "--report"]) == 0
        out = capsys.readouterr().out
        assert "serving report: 1 query on n=32" in out
        assert "latency:" in out and "cache:" in out and "stages:" in out

    def test_odd_pair_list_is_a_usage_error(self, capsys):
        assert main(["route", "0", "5", "3", *COMMON]) == 2
        assert "even-length" in capsys.readouterr().err

    def test_no_queries_is_a_usage_error(self, capsys):
        assert main(["route", *COMMON]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_pairs_file_extends_the_workload(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("1 7\n2 9\n")
        assert main(["route", "0", "5", *COMMON,
                     "--pairs-file", str(pairs)]) == 0
        out = capsys.readouterr().out
        assert "route 1 -> 7" in out and "route 2 -> 9" in out

    def test_out_of_range_pairs_file_fails_before_solving(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 99\n")
        assert main(["route", *COMMON, "--pairs-file", str(pairs)]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_algebra_and_cache_knobs(self, capsys):
        assert main(["route", "0", "9", "1", "4", *COMMON,
                     "--algebra", "reachability", "--cache-rows", "2"]) == 0
        assert "reachable" in capsys.readouterr().out


class TestServeCommand:
    def test_replay_prints_the_report(self, capsys):
        assert main(["serve", *COMMON, "--queries", "40", "--sources", "4",
                     "--cache-rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "serving report: 40 queries on n=32" in out
        assert "eviction" in out and "max 2 rows" in out

    def test_verify_reports_the_fold_summary(self, capsys):
        assert main(["serve", *COMMON, "--queries", "30", "--verify"]) == 0
        assert "30/30 folded route(s) match" in capsys.readouterr().out

    def test_csv_emits_one_flat_row(self, capsys):
        assert main(["serve", *COMMON, "--queries", "20", "--csv"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2                       # header + one row
        header = out[0].split(",")
        assert "queries" in header
        assert "cache_hit_rate" in header
        assert "stage_row_solve_s" in header
        assert "stage_seconds" not in header       # no nested dicts in CSV

    def test_zero_queries_is_a_usage_error(self, capsys):
        assert main(["serve", *COMMON, "--queries", "0"]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_pairs_file_replay(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1\n0 2\n0 3\n")
        assert main(["serve", *COMMON, "--pairs-file", str(pairs)]) == 0
        assert "3 queries" in capsys.readouterr().out

    def test_cache_budget_kb_bounds_the_cache(self, capsys):
        assert main(["serve", *COMMON, "--queries", "64", "--sources", "16",
                     "--cache-budget-kb", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "budget 256B" in out


class TestConvertCommand:
    def test_edge_list_to_npz_then_served(self, tmp_path, capsys):
        src = tmp_path / "demo.txt"
        # directed=0 mirrors the edges: the default blocked-cb solver only
        # accepts symmetric (undirected) adjacencies.
        src.write_text("# directed=0\n0 1 2.5\n1 2 1.0\n2 3 4.0\n0 3 9.5\n")
        npz = tmp_path / "demo.npz"
        assert main(["convert", str(src), str(npz)]) == 0
        assert "n=4, nnz=8" in capsys.readouterr().out
        assert main(["route", "0", "3", "--input", str(npz),
                     "--block-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "route 0 -> 3" in out and "match" in out

    def test_bad_target_extension_fails(self, tmp_path, capsys):
        src = tmp_path / "demo.txt"
        src.write_text("0 1 1.0\n")
        with pytest.raises(SystemExit):
            main(["convert", str(src)])            # target is required
        assert main(["convert", str(src), str(tmp_path / "x.json")]) != 0

"""Tests for ``apspark chaos``: seeded fault schedules, exit codes, report."""

import numpy as np

from repro.experiments import chaos
from repro.experiments.cli import main

COMMON = ["--n", "40", "--block-size", "8", "--queries", "8",
          "--update-batches", "1", "--edges-per-batch", "3"]


class TestChaosCommand:
    def test_default_schedule_passes_and_reports(self, capsys):
        assert main(["chaos", *COMMON, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "exactness under faults: OK" in out
        assert "injected:" in out and "recovered:" in out

    def test_quiet_mode_prints_only_the_verdict(self, capsys):
        assert main(["chaos", *COMMON, "--seed", "3", "--quiet"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1 and "exactness under faults: OK" in out[0]

    def test_failure_rate_schedule_passes(self, capsys):
        assert main(["chaos", *COMMON, "--seed", "11",
                     "--failure-rate", "0.05", "--crashes", "0",
                     "--failures", "0", "--corrupt-writes", "0",
                     "--drop-writes", "0"]) == 0
        assert "exactness under faults: OK" in capsys.readouterr().out

    def test_bad_rate_is_a_usage_error(self, capsys):
        assert main(["chaos", *COMMON, "--failure-rate", "1.5"]) == 2
        assert capsys.readouterr().err != ""

    def test_exactness_violation_exits_nonzero(self, capsys, monkeypatch):
        """A faulted leg that diverges must fail the run, report on stderr."""
        real = chaos._run_workload
        state = {"calls": 0}

        def corrupting(*args, **kwargs):
            result = real(*args, **kwargs)
            state["calls"] += 1
            if state["calls"] == 2:  # the faulted leg
                solve = np.array(result[0], copy=True)
                solve[0, 1] += 1.0
                result = (solve, *result[1:])
            return result

        monkeypatch.setattr(chaos, "_run_workload", corrupting)
        assert main(["chaos", *COMMON, "--seed", "3"]) == 1
        err = capsys.readouterr().err
        assert "exactness under faults: VIOLATED" in err
        assert "MISMATCH" in err

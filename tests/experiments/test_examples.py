"""Integration tests: the example applications must run end-to-end.

Each example is executed in-process via ``runpy`` (calling its ``main()``)
so regressions in the public API surface immediately.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "isomap_geodesics.py",
    "solver_comparison.py",
    "partitioner_tuning.py",
    "fault_tolerance.py",
]


def _load(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    assert os.path.exists(path), f"example {name} is missing"
    return runpy.run_path(path, run_name="not_main")


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_and_succeeds(name, capsys):
    module_globals = _load(name)
    assert "main" in module_globals, f"{name} must define main()"
    assert module_globals["main"]() == 0
    # Every example prints something useful.
    assert capsys.readouterr().out.strip()


def test_quickstart_verifies_against_reference(capsys):
    module_globals = _load("quickstart.py")
    module_globals["main"]()
    out = capsys.readouterr().out
    assert "match the reference" in out


def test_fault_tolerance_demonstrates_both_behaviours(capsys):
    module_globals = _load("fault_tolerance.py")
    module_globals["main"]()
    out = capsys.readouterr().out
    assert "retried" in out
    assert "failed as expected" in out


def test_isomap_unrolls_the_manifold(capsys):
    module_globals = _load("isomap_geodesics.py")
    module_globals["main"]()
    assert "unrolls the manifold" in capsys.readouterr().out

"""Tests for repro.common.validation and repro.common.rng."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.rng import make_rng, spawn_rngs, derive_seed
from repro.common.validation import (
    check_block_size,
    check_nonnegative_weights,
    check_positive_int,
    check_square_matrix,
    check_symmetric,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(3), "x") == 3

    @pytest.mark.parametrize("value", [0, -1, 2.5, "3", True])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValidationError):
            check_positive_int(value, "x")


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        out = check_square_matrix(np.eye(3))
        assert out.dtype == np.float64

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.zeros((2, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.zeros((0, 0)))


class TestCheckNonnegativeWeights:
    def test_accepts_inf_entries(self):
        m = np.array([[0.0, np.inf], [np.inf, 0.0]])
        check_nonnegative_weights(m)

    def test_rejects_negative(self):
        m = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValidationError):
            check_nonnegative_weights(m)

    def test_algebra_conditional(self):
        # Non-negativity is a (min, +) precondition, not a universal one:
        # the check routes through the algebra's input-validator hook.
        m = np.array([[0.0, -1.0], [-1.0, 0.0]])
        check_nonnegative_weights(m, algebra="reachability")  # no precondition
        with pytest.raises(ValidationError):
            check_nonnegative_weights(m, algebra="widest-path")
        probs = np.array([[0.0, 0.5], [0.5, 0.0]])
        check_nonnegative_weights(probs, algebra="most-reliable")
        too_big = np.array([[0.0, 2.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            check_nonnegative_weights(too_big, algebra="most-reliable")

    def test_check_square_dtype_none_preserves_native(self):
        m32 = np.zeros((2, 2), dtype=np.float32)
        assert check_square_matrix(m32, dtype=None).dtype == np.float32
        mb = np.zeros((2, 2), dtype=bool)
        assert check_square_matrix(mb, dtype=None).dtype == np.bool_
        mi = np.zeros((2, 2), dtype=np.int32)
        assert check_square_matrix(mi, dtype=None).dtype == np.float64


class TestCheckBlockSize:
    def test_valid(self):
        assert check_block_size(4, 16) == 4

    def test_block_larger_than_n_rejected(self):
        with pytest.raises(ValidationError):
            check_block_size(32, 16)

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            check_block_size(0, 16)


class TestCheckSymmetric:
    def test_symmetric_with_inf_passes(self):
        m = np.array([[0.0, np.inf], [np.inf, 0.0]])
        check_symmetric(m)

    def test_asymmetric_rejected(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            check_symmetric(m)


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_spawn_rngs_are_independent(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        streams = [r.random(4).tolist() for r in rngs]
        assert streams[0] != streams[1] != streams[2]

    def test_spawn_rngs_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
        assert 0 <= derive_seed(123, 7) < 2 ** 63

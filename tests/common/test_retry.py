"""Tests for the shared deterministic-jitter backoff policy."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.retry import DEFAULT_MAX_ATTEMPTS, BackoffPolicy


class TestBackoffValidation:
    def test_defaults_are_valid(self):
        policy = BackoffPolicy()
        assert policy.max_attempts == DEFAULT_MAX_ATTEMPTS == 4

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_seconds": -0.1},
        {"multiplier": 0.5},
        {"max_seconds": -1.0},
        {"jitter": -0.1},
        {"jitter": 1.5},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(**kwargs)


class TestBackoffSchedule:
    def test_first_execution_sleeps_zero(self):
        assert BackoffPolicy().delay(0) == 0.0
        assert BackoffPolicy().delay(-3) == 0.0

    def test_exponential_growth_without_jitter(self):
        policy = BackoffPolicy(base_seconds=0.01, multiplier=2.0,
                               max_seconds=10.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(3) == pytest.approx(0.04)

    def test_cap_applies(self):
        policy = BackoffPolicy(base_seconds=0.1, multiplier=10.0,
                               max_seconds=0.25, jitter=0.0)
        assert policy.delay(5) == 0.25

    def test_jitter_only_shrinks_and_is_bounded(self):
        policy = BackoffPolicy(base_seconds=0.08, multiplier=1.0,
                               max_seconds=1.0, jitter=0.5, seed=11)
        for attempt in range(1, 5):
            d = policy.delay(attempt, key=3)
            assert 0.04 <= d <= 0.08

    def test_deterministic_across_instances(self):
        a = BackoffPolicy(seed=42)
        b = BackoffPolicy(seed=42)
        schedule_a = [a.delay(k, key=7) for k in range(1, 5)]
        schedule_b = [b.delay(k, key=7) for k in range(1, 5)]
        assert schedule_a == schedule_b

    def test_keys_decorrelate_sites(self):
        policy = BackoffPolicy(seed=42, base_seconds=0.1, multiplier=1.0,
                               max_seconds=1.0, jitter=1.0)
        assert policy.delay(1, key=0) != policy.delay(1, key=1)

    def test_seeds_decorrelate_sessions(self):
        assert (BackoffPolicy(seed=1, jitter=1.0).delay(1)
                != BackoffPolicy(seed=2, jitter=1.0).delay(1))

    def test_reseed_returns_new_policy(self):
        policy = BackoffPolicy(seed=0)
        reseeded = policy.reseed(99)
        assert reseeded.seed == 99 and policy.seed == 0
        assert policy.reseed(0) is policy

    def test_sleep_returns_slept_seconds(self):
        policy = BackoffPolicy(base_seconds=0.001, max_seconds=0.002)
        assert policy.sleep(1) == policy.delay(1)
        assert policy.sleep(0) == 0.0

"""Tests for repro.common.timing."""

import pytest

from repro.common.timing import Timer, Stopwatch, format_seconds


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            pass
        assert t.elapsed >= 0.0
        assert t.count == 1

    def test_multiple_cycles_accumulate(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert t.count == 3
        assert t.mean == pytest.approx(t.elapsed / 3)

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.count == 0

    def test_mean_of_empty_timer_is_zero(self):
        assert Timer().mean == 0.0


class TestStopwatch:
    def test_sections_are_recorded(self):
        sw = Stopwatch()
        with sw.section("a"):
            pass
        with sw.section("b"):
            pass
        assert set(sw.as_dict()) == {"a", "b"}
        assert sw.total() == pytest.approx(sw.elapsed("a") + sw.elapsed("b"))

    def test_same_section_accumulates(self):
        sw = Stopwatch()
        with sw.section("x"):
            pass
        first = sw.elapsed("x")
        with sw.section("x"):
            pass
        assert sw.elapsed("x") >= first

    def test_unknown_section_elapsed_is_zero(self):
        assert Stopwatch().elapsed("nope") == 0.0


class TestFormatSeconds:
    @pytest.mark.parametrize("seconds,expected", [
        (45, "45s"),
        (0.022, "0.022s"),
        (60, "1m0s"),
        (115, "1m55s"),
        (3600, "1h0m"),
        (8 * 3600 + 9 * 60, "8h9m"),
        (86400 * 9 + 16 * 3600, "9d16h"),
    ])
    def test_paper_style_formatting(self, seconds, expected):
        assert format_seconds(seconds) == expected

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_seconds(-1)

"""Tests for repro.common.config."""

import os

import pytest

from repro.common.config import EngineConfig, default_config, BACKENDS
from repro.common.errors import ConfigurationError


class TestEngineConfig:
    def test_default_config_is_serial(self):
        cfg = default_config()
        assert cfg.backend == "serial"
        assert cfg.total_cores == 8

    def test_total_cores(self):
        cfg = EngineConfig(num_executors=3, cores_per_executor=5)
        assert cfg.total_cores == 15

    def test_parallelism_defaults_to_total_cores(self):
        cfg = EngineConfig(num_executors=4, cores_per_executor=4)
        assert cfg.parallelism == 16

    def test_parallelism_override(self):
        cfg = EngineConfig(default_parallelism=7)
        assert cfg.parallelism == 7

    def test_parallelism_has_floor_of_two(self):
        cfg = EngineConfig(num_executors=1, cores_per_executor=1)
        assert cfg.parallelism >= 2

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(backend="mpi")

    def test_invalid_executors_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(num_executors=0)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(cores_per_executor=0)

    def test_negative_storage_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(local_storage_bytes=-1)

    def test_none_storage_allowed(self):
        cfg = EngineConfig(local_storage_bytes=None)
        assert cfg.local_storage_bytes is None

    def test_replace_returns_modified_copy(self):
        cfg = EngineConfig(num_executors=4)
        cfg2 = cfg.replace(num_executors=8)
        assert cfg.num_executors == 4
        assert cfg2.num_executors == 8

    def test_replace_validates(self):
        cfg = EngineConfig()
        with pytest.raises(ConfigurationError):
            cfg.replace(backend="bogus")

    def test_resolve_shared_fs_dir_creates_tempdir_without_mutation(self):
        import shutil

        cfg = EngineConfig()
        path = cfg.resolve_shared_fs_dir()
        try:
            assert os.path.isdir(path)
            # The config is not mutated: the caller owns the temp dir.
            assert cfg.shared_fs_dir is None
        finally:
            shutil.rmtree(path, ignore_errors=True)

    def test_resolve_shared_fs_dir_respects_explicit_dir(self, tmp_path):
        target = str(tmp_path / "gpfs")
        cfg = EngineConfig(shared_fs_dir=target)
        assert cfg.resolve_shared_fs_dir() == target
        assert os.path.isdir(target)

    def test_backends_constant(self):
        assert "serial" in BACKENDS and "threads" in BACKENDS

"""Tests for the external graph loaders: edge lists, MatrixMarket, convert."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.graph.io import (convert_graph, load_external_edges, load_graph,
                            load_mtx, save_matrix, save_sparse_npz)
from repro.graph.sparse import is_sparse, sparse_to_dense


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestLoadExternalEdges:
    def test_default_is_undirected(self, tmp_path):
        # The canonical repo-wide default: undirected, like save_edge_list,
        # adjacency_from_edges and load_mtx.
        path = write(tmp_path, "g.txt", "0 1 2.5\n1 2 1.0\n")
        csr = load_external_edges(path)
        assert is_sparse(csr)
        assert csr.shape == (3, 3)
        assert csr[0, 1] == 2.5 and csr[1, 2] == 1.0
        assert csr[1, 0] == 2.5                     # undirected: mirrored

    def test_directed_keyword_keeps_orientation(self, tmp_path):
        path = write(tmp_path, "g.txt", "0 1 2.5\n1 2 1.0\n")
        csr = load_external_edges(path, directed=True)
        assert csr[0, 1] == 2.5 and csr[1, 2] == 1.0
        assert csr[1, 0] == 0.0                     # directed: no mirror

    def test_unweighted_lines_get_default_weight(self, tmp_path):
        path = write(tmp_path, "g.txt", "0 1\n1 2\n")
        csr = load_external_edges(path, default_weight=7.0)
        assert csr[0, 1] == 7.0

    def test_comments_commas_and_blank_lines(self, tmp_path):
        path = write(tmp_path, "g.txt",
                     "# header\n% also a comment\n\n0,1,3.0\n 1 , 2 , 4.0 \n")
        csr = load_external_edges(path)
        assert csr[0, 1] == 3.0 and csr[1, 2] == 4.0

    def test_n_token_pins_the_vertex_count(self, tmp_path):
        path = write(tmp_path, "g.txt", "# n=10\n0 1 1.0\n")
        assert load_external_edges(path).shape == (10, 10)

    def test_vertex_id_beyond_declared_n_rejected(self, tmp_path):
        path = write(tmp_path, "g.txt", "# n=3\n0 5 1.0\n")
        with pytest.raises(ValidationError, match="out of range"):
            load_external_edges(path)

    def test_directed_token_overrides_keyword(self, tmp_path):
        path = write(tmp_path, "g.txt", "# directed=0\n0 1 2.0\n")
        csr = load_external_edges(path, directed=True)
        assert csr[0, 1] == 2.0 and csr[1, 0] == 2.0

    def test_undirected_keyword_mirrors(self, tmp_path):
        path = write(tmp_path, "g.txt", "0 1 2.0\n")
        csr = load_external_edges(path, directed=False)
        assert csr[1, 0] == 2.0

    def test_duplicate_edges_keep_minimum_weight(self, tmp_path):
        path = write(tmp_path, "g.txt", "0 1 5.0\n0 1 2.0\n0 1 9.0\n")
        csr = load_external_edges(path, directed=True)
        assert csr.nnz == 1
        assert csr[0, 1] == 2.0                     # min, not scipy's sum

    def test_self_loops_dropped(self, tmp_path):
        path = write(tmp_path, "g.txt", "0 0 1.0\n0 1 2.0\n")
        csr = load_external_edges(path, directed=True)
        assert csr.nnz == 1 and csr[0, 0] == 0.0

    def test_malformed_line_reports_location(self, tmp_path):
        path = write(tmp_path, "g.txt", "0 1 1.0\n0 1 2 3\n")
        with pytest.raises(ValidationError, match=r":2:"):
            load_external_edges(path)

    def test_negative_vertex_id_rejected(self, tmp_path):
        path = write(tmp_path, "g.txt", "0 -1 1.0\n")
        with pytest.raises(ValidationError, match=">= 0"):
            load_external_edges(path)

    def test_empty_file_gives_empty_graph(self, tmp_path):
        path = write(tmp_path, "g.txt", "# nothing\n")
        assert load_external_edges(path).shape == (0, 0)


class TestLoadMtx:
    def header(self, field="real", symmetry="general"):
        return f"%%MatrixMarket matrix coordinate {field} {symmetry}\n"

    def test_general_real(self, tmp_path):
        path = write(tmp_path, "g.mtx",
                     self.header() + "% comment\n3 3 2\n1 2 2.5\n2 3 1.5\n")
        csr = load_mtx(path)
        assert csr.shape == (3, 3)
        assert csr[0, 1] == 2.5 and csr[1, 2] == 1.5   # 1-based -> 0-based

    def test_symmetric_pattern(self, tmp_path):
        path = write(tmp_path, "g.mtx",
                     self.header("pattern", "symmetric") + "3 3 2\n1 2\n2 3\n")
        csr = load_mtx(path)
        assert csr[0, 1] == 1.0 and csr[1, 0] == 1.0   # mirrored, weight 1
        assert csr.nnz == 4

    def test_integer_field(self, tmp_path):
        path = write(tmp_path, "g.mtx",
                     self.header("integer") + "2 2 1\n1 2 4\n")
        assert load_mtx(path)[0, 1] == 4.0

    def test_missing_header_rejected(self, tmp_path):
        path = write(tmp_path, "g.mtx", "3 3 1\n1 2 1.0\n")
        with pytest.raises(ValidationError, match="MatrixMarket header"):
            load_mtx(path)

    def test_array_layout_rejected(self, tmp_path):
        path = write(tmp_path, "g.mtx",
                     "%%MatrixMarket matrix array real general\n2 2\n1.0\n")
        with pytest.raises(ValidationError, match="coordinate"):
            load_mtx(path)

    def test_complex_field_rejected(self, tmp_path):
        path = write(tmp_path, "g.mtx", self.header("complex") + "2 2 0\n")
        with pytest.raises(ValidationError, match="unsupported"):
            load_mtx(path)

    def test_non_square_rejected(self, tmp_path):
        path = write(tmp_path, "g.mtx", self.header() + "2 3 1\n1 2 1.0\n")
        with pytest.raises(ValidationError, match="square"):
            load_mtx(path)

    def test_out_of_range_entry_rejected(self, tmp_path):
        path = write(tmp_path, "g.mtx", self.header() + "2 2 1\n1 5 1.0\n")
        with pytest.raises(ValidationError, match="out of range"):
            load_mtx(path)

    def test_missing_size_line_rejected(self, tmp_path):
        path = write(tmp_path, "g.mtx", self.header() + "% only comments\n")
        with pytest.raises(ValidationError, match="size line"):
            load_mtx(path)


class TestLoadGraphDispatch:
    def test_extension_routing(self, tmp_path):
        dense = np.full((3, 3), np.inf)
        np.fill_diagonal(dense, 0.0)
        dense[0, 1] = 2.0
        npy = str(tmp_path / "g.npy")
        save_matrix(dense, npy)
        loaded = load_graph(npy)
        assert not is_sparse(loaded.adjacency)
        assert loaded.adjacency[0, 1] == 2.0

        txt = write(tmp_path, "g.txt", "0 1 2.0\n# n=3\n")
        assert is_sparse(load_graph(txt).adjacency)

        mtx = write(tmp_path, "g.mtx",
                    "%%MatrixMarket matrix coordinate real general\n"
                    "3 3 1\n1 2 2.0\n")
        assert is_sparse(load_graph(mtx).adjacency)

    def test_npz_round_trip(self, tmp_path):
        txt = write(tmp_path, "g.txt", "0 1 2.0\n1 2 3.0\n")
        npz = str(tmp_path / "g.npz")
        save_sparse_npz(load_graph(txt).adjacency, npz)
        csr = load_graph(npz).adjacency
        assert is_sparse(csr) and csr[1, 2] == 3.0


class TestLoadGraphDirectedness:
    """load_graph reports directedness in one pass, per source format."""

    def test_edge_list_token_reports_directed(self, tmp_path):
        txt = write(tmp_path, "g.txt", "# directed=1\n0 1 2.0\n")
        graph = load_graph(txt)
        assert graph.directed is True
        assert graph.adjacency[1, 0] == 0.0

    def test_edge_list_defaults_to_undirected(self, tmp_path):
        txt = write(tmp_path, "g.txt", "0 1 2.0\n")
        graph = load_graph(txt)
        assert graph.directed is False
        assert graph.adjacency[1, 0] == 2.0

    def test_mtx_symmetric_is_undirected(self, tmp_path):
        mtx = write(tmp_path, "g.mtx",
                    "%%MatrixMarket matrix coordinate real symmetric\n"
                    "3 3 1\n1 2 2.0\n")
        assert load_graph(mtx).directed is False

    def test_mtx_general_asymmetric_is_directed(self, tmp_path):
        mtx = write(tmp_path, "g.mtx",
                    "%%MatrixMarket matrix coordinate real general\n"
                    "3 3 1\n1 2 2.0\n")
        assert load_graph(mtx).directed is True

    def test_mtx_general_with_symmetric_content_sniffs_undirected(self, tmp_path):
        mtx = write(tmp_path, "g.mtx",
                    "%%MatrixMarket matrix coordinate real general\n"
                    "3 3 2\n1 2 2.0\n2 1 2.0\n")
        assert load_graph(mtx).directed is False

    def test_mtx_directed_comment_token_wins(self, tmp_path):
        mtx = write(tmp_path, "g.mtx",
                    "%%MatrixMarket matrix coordinate real general\n"
                    "% directed=1\n"
                    "3 3 2\n1 2 2.0\n2 1 2.0\n")
        assert load_graph(mtx).directed is True

    def test_npz_sniffs_symmetry(self, tmp_path):
        directed_txt = write(tmp_path, "d.txt", "# directed=1\n0 1 2.0\n# n=3\n")
        npz = str(tmp_path / "d.npz")
        convert_graph(directed_txt, npz)
        assert load_graph(npz).directed is True

        undirected_txt = write(tmp_path, "u.txt", "0 1 2.0\n# n=3\n")
        npz2 = str(tmp_path / "u.npz")
        convert_graph(undirected_txt, npz2)
        assert load_graph(npz2).directed is False

    def test_npy_sniffs_symmetry(self, tmp_path):
        dense = np.full((3, 3), np.inf)
        np.fill_diagonal(dense, 0.0)
        dense[0, 1] = 2.0
        npy = str(tmp_path / "g.npy")
        save_matrix(dense, npy)
        assert load_graph(npy).directed is True

        dense[1, 0] = 2.0
        save_matrix(dense, npy)
        assert load_graph(npy).directed is False


class TestConvertGraph:
    def test_edge_list_to_npz(self, tmp_path):
        txt = write(tmp_path, "g.txt",
                    "# directed=1\n0 1 2.5\n1 2 1.0\n2 3 4.0\n")
        npz = str(tmp_path / "g.npz")
        n, nnz = convert_graph(txt, npz)
        assert (n, nnz) == (4, 3)
        csr = load_graph(npz).adjacency
        assert csr[0, 1] == 2.5 and csr.nnz == 3

    def test_csr_to_dense_npy(self, tmp_path):
        txt = write(tmp_path, "g.txt", "0 1 2.5\n# n=3 directed=1\n")
        npy = str(tmp_path / "g.npy")
        n, nnz = convert_graph(txt, npy)
        assert (n, nnz) == (3, 1)
        dense = load_graph(npy).adjacency
        assert dense[0, 1] == 2.5
        assert np.isinf(dense[1, 0])                # canonical expansion
        assert dense[0, 0] == 0.0

    def test_dense_to_npz_takes_finite_off_diagonal(self, tmp_path):
        dense = np.full((3, 3), np.inf)
        np.fill_diagonal(dense, 0.0)
        dense[0, 2] = 1.5
        npy = str(tmp_path / "g.npy")
        save_matrix(dense, npy)
        npz = str(tmp_path / "g.npz")
        n, nnz = convert_graph(npy, npz)
        assert (n, nnz) == (3, 1)
        assert load_graph(npz).adjacency[0, 2] == 1.5

    def test_round_trip_preserves_the_graph(self, tmp_path):
        txt = write(tmp_path, "g.txt",
                    "# directed=1\n0 1 2.0\n1 2 3.0\n2 0 4.0\n")
        npz = str(tmp_path / "g.npz")
        npy = str(tmp_path / "g.npy")
        convert_graph(txt, npz)
        convert_graph(npz, npy)
        dense = load_graph(npy).adjacency
        expected = sparse_to_dense(load_graph(npz).adjacency)
        assert np.array_equal(dense, expected)

    def test_unknown_target_extension_rejected(self, tmp_path):
        txt = write(tmp_path, "g.txt", "0 1 1.0\n")
        with pytest.raises(ValidationError, match="convert target"):
            convert_graph(txt, str(tmp_path / "g.json"))

"""Sparse (CSR) ingestion: generation, validation, block cutting, memory."""

import os
import tracemalloc

import numpy as np
import pytest
import scipy.sparse as sp

from repro.common.config import EngineConfig
from repro.common.errors import ValidationError
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.adjacency import knn_adjacency
from repro.graph.generators import (grid_adjacency, paper_edge_probability,
                                    random_geometric_adjacency)
from repro.graph.io import load_sparse_npz, save_sparse_npz
from repro.graph.sparse import (erdos_renyi_sparse, grid_sparse, is_sparse,
                                knn_sparse, random_geometric_sparse,
                                sparse_to_blocks, sparse_to_dense,
                                validate_sparse_adjacency)
from repro.linalg.algebra import get_algebra
from repro.linalg.bitset import is_packed
from repro.linalg.blocks import matrix_to_blocks
from repro.linalg.kernels import semiring_closure


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------
def test_erdos_renyi_sparse_structure():
    n = 300
    csr = erdos_renyi_sparse(n, seed=7)
    assert is_sparse(csr) and csr.shape == (n, n)
    assert (csr != csr.T).nnz == 0                      # symmetric
    assert csr.diagonal().sum() == 0                    # no self loops
    assert csr.data.min() >= 1.0 and csr.data.max() < 10.0
    # nnz concentrates around 2 * p * n(n-1)/2.
    expected = paper_edge_probability(n) * n * (n - 1)
    assert 0.5 * expected < csr.nnz < 1.7 * expected


def test_erdos_renyi_sparse_options():
    assert erdos_renyi_sparse(50, p=0.0, seed=0).nnz == 0
    full = erdos_renyi_sparse(20, p=1.0, seed=0, weighted=False)
    assert full.nnz == 20 * 19
    assert set(np.unique(full.data)) == {1.0}
    boolean = erdos_renyi_sparse(60, seed=1, dtype="bool")
    assert boolean.dtype == np.bool_
    # Same seed => same edge structure regardless of weighting.
    a = erdos_renyi_sparse(80, seed=5)
    b = erdos_renyi_sparse(80, seed=5, weighted=False)
    assert (a != a.T).nnz == 0
    assert np.array_equal(a.indices, b.indices) and np.array_equal(a.indptr, b.indptr)
    with pytest.raises(ValidationError):
        erdos_renyi_sparse(10, p=1.5)
    with pytest.raises(ValidationError):
        erdos_renyi_sparse(10, weight_low=-1.0)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
def test_validate_sparse_adjacency_basics():
    csr = erdos_renyi_sparse(120, seed=3)
    out = validate_sparse_adjacency(csr, require_symmetric=True,
                                    algebra="shortest-path")
    assert is_sparse(out) and out.dtype == np.float64

    asym = csr.tolil()
    asym[0, 1] = 99.0
    asym[1, 0] = 0.0
    with pytest.raises(ValidationError):
        validate_sparse_adjacency(asym.tocsr(), require_symmetric=True)

    negative = csr.copy()
    negative.data[0] = -1.0
    with pytest.raises(ValidationError):
        validate_sparse_adjacency(negative, algebra="shortest-path")

    with pytest.raises(ValidationError):
        validate_sparse_adjacency(sp.csr_matrix((3, 4)))
    with pytest.raises(ValidationError):
        validate_sparse_adjacency(np.eye(3))
    with pytest.raises(ValidationError):  # DAG check needs the dense structure
        validate_sparse_adjacency(csr, algebra="longest-path")


def test_validate_sparse_prunes_nonfinite_but_keeps_zero_weights():
    m = sp.csr_matrix(
        # (0, 1) is an explicitly stored "no edge"; (2, 3) a legitimate
        # zero-weight edge (the COO constructor keeps explicit zeros).
        (np.array([np.inf, np.inf, 0.0, 0.0]),
         (np.array([0, 1, 2, 3]), np.array([1, 0, 3, 2]))),
        shape=(4, 4))
    assert m.nnz == 4
    out = validate_sparse_adjacency(m, require_symmetric=True,
                                    algebra="shortest-path")
    dense = sparse_to_dense(out)
    assert np.isinf(dense[0, 1])         # pruned
    assert dense[2, 3] == 0.0            # kept: 0-weight edge, not "missing"


def test_validate_adjacency_dispatches_sparse():
    from repro.graph.adjacency import validate_adjacency
    csr = erdos_renyi_sparse(64, seed=9)
    out = validate_adjacency(csr, require_symmetric=True,
                             algebra="shortest-path", dtype="float64",
                             allow_sparse=True)
    assert is_sparse(out)
    # Without the opt-in (dense-only callers), sparse input fails fast ...
    with pytest.raises(ValidationError, match="dense adjacency"):
        validate_adjacency(csr)
    # ... which keeps the sequential solvers' contract honest.
    from repro.sequential.floyd_warshall import floyd_warshall_numpy
    with pytest.raises(ValidationError, match="dense adjacency"):
        floyd_warshall_numpy(csr)


def test_cli_rejects_malformed_input_file(tmp_path, capsys):
    # Unknown extensions now parse as plain-text edge lists (the ingestion
    # front door), so a rejection means the *content* failed to parse.
    from repro.experiments.cli import main
    path = os.path.join(tmp_path, "graph.txt")
    open(path, "w").write("nope")
    assert main(["solve", "--input", path]) == 2
    assert "cannot load --input" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Block cutting
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algebra,dtype", [("shortest-path", "float64"),
                                           ("shortest-path", "float32"),
                                           ("widest-path", "float64"),
                                           ("reachability", "bool")])
@pytest.mark.parametrize("block_size", [17, 48])   # ragged and even
def test_sparse_blocks_match_dense_blocks(algebra, dtype, block_size):
    csr = erdos_renyi_sparse(100, seed=11)
    valid = validate_sparse_adjacency(csr, require_symmetric=True,
                                      algebra=algebra, dtype=dtype)
    resolved = get_algebra(algebra)
    prepared = resolved.prepare_adjacency(sparse_to_dense(valid, algebra=resolved),
                                          dtype=dtype)
    ref = dict(matrix_to_blocks(prepared, block_size))
    got = dict(sparse_to_blocks(valid, block_size, algebra=algebra, dtype=dtype))
    assert set(ref) == set(got)
    for key in ref:
        assert got[key].dtype == ref[key].dtype
        assert np.array_equal(got[key], ref[key]), key


def test_sparse_blocks_packed_storage():
    csr = erdos_renyi_sparse(90, seed=2, dtype="bool")
    valid = validate_sparse_adjacency(csr, require_symmetric=True,
                                      algebra="reachability")
    blocks = dict(sparse_to_blocks(valid, 25, algebra="reachability",
                                   storage="packed"))
    assert all(is_packed(b) for b in blocks.values())
    dense_ref = get_algebra("reachability").prepare_adjacency(
        sparse_to_dense(valid, algebra="reachability"))
    ref = dict(matrix_to_blocks(dense_ref, 25))
    for key in ref:
        assert np.array_equal(blocks[key].to_dense(), ref[key]), key


# ---------------------------------------------------------------------------
# End to end
# ---------------------------------------------------------------------------
def test_sparse_solve_matches_dense_solve():
    csr = erdos_renyi_sparse(130, seed=21)
    dense = sparse_to_dense(csr)
    with APSPEngine(EngineConfig()) as eng:
        for solver in ("blocked-cb", "blocked-im", "repeated-squaring", "fw-2d"):
            request = SolveRequest(solver=solver, block_size=40)
            from_sparse = eng.solve(csr, request)
            from_dense = eng.solve(dense, request)
            assert np.array_equal(from_sparse.distances, from_dense.distances)


def test_sparse_reachability_solve_is_packed_and_exact():
    csr = erdos_renyi_sparse(110, seed=23, dtype="bool")
    reference = semiring_closure(sparse_to_dense(csr, algebra="reachability"),
                                 "reachability")
    with APSPEngine(EngineConfig()) as eng:
        result = eng.solve(csr, SolveRequest(solver="blocked-cb", block_size=30,
                                             algebra="reachability"))
    assert result.storage == "packed"
    assert np.array_equal(result.distances, reference)


def test_npz_round_trip(tmp_path):
    csr = erdos_renyi_sparse(70, seed=4)
    path = os.path.join(tmp_path, "graph.npz")
    save_sparse_npz(csr, path)
    loaded = load_sparse_npz(path)
    assert (loaded != csr).nnz == 0
    with pytest.raises(ValidationError):
        save_sparse_npz(np.eye(3), path)


def test_cli_accepts_npz_input(tmp_path, capsys):
    from repro.experiments.cli import main
    path = os.path.join(tmp_path, "graph.npz")
    save_sparse_npz(erdos_renyi_sparse(72, seed=6), path)
    assert main(["solve", "--input", path, "--solver", "blocked-cb",
                 "--block-size", "24"]) == 0
    out = capsys.readouterr().out
    assert "sparse CSR" in out and "verified" in out
    assert main(["solve", "--input", path, "--no-verify"]) == 0
    assert "verification skipped" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The memory gate: ingestion never materializes a dense n x n array
# ---------------------------------------------------------------------------
def test_sparse_ingestion_peak_allocation():
    """Prepare + block-cut a CSR input and bound the peak allocation.

    With n = 1024 a dense float64 staging array would be 8 MiB (and even a
    bool one 1 MiB); the sparse path must stay well under that — O(nnz + b²)
    per step plus the O(n²/64) packed output blocks themselves.
    """
    n, b = 1024, 128
    csr = erdos_renyi_sparse(n, seed=31, dtype="bool")
    with APSPEngine(EngineConfig()) as eng:
        request = SolveRequest(solver="blocked-cb", block_size=b,
                               algebra="reachability")
        tracemalloc.start()
        plan = eng.plan(csr, request)
        records = list(plan.block_records())
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    assert plan.sparse_input
    assert all(is_packed(block) for _, block in records)
    dense_n2 = n * n          # bytes of a bool n x n; float64 would be 8x
    # Packed blocks total ~n^2/16 bytes (upper triangle, 64 bits/word, with
    # per-solve overheads); the gate is that nothing n^2-sized was staged.
    assert peak < dense_n2 // 2, f"peak {peak} suggests a dense staging array"


def test_sparse_plan_keeps_csr_not_dense():
    csr = erdos_renyi_sparse(256, seed=33)
    with APSPEngine(EngineConfig()) as eng:
        plan = eng.plan(csr, SolveRequest(solver="blocked-cb", block_size=64))
    assert plan.sparse_input
    assert is_sparse(plan.adjacency)
    assert plan.describe()["sparse_input"] is True


# ---------------------------------------------------------------------------
# CSR twins of the remaining dense generators
# ---------------------------------------------------------------------------
class TestSparseGeneratorTwins:
    def test_grid_matches_dense(self):
        for rows, cols in [(1, 1), (1, 6), (4, 7), (5, 5)]:
            csr = grid_sparse(rows, cols, weight=2.5)
            assert is_sparse(csr)
            assert np.array_equal(sparse_to_dense(csr),
                                  grid_adjacency(rows, cols, weight=2.5))

    def test_random_geometric_matches_dense_for_same_seed(self):
        for n, dim in [(2, 2), (40, 2), (64, 3)]:
            csr = random_geometric_sparse(n, dim=dim, seed=9)
            dense = random_geometric_adjacency(n, dim=dim, seed=9)
            assert np.array_equal(sparse_to_dense(csr), dense)

    def test_random_geometric_explicit_radius(self):
        csr = random_geometric_sparse(50, radius=0.3, seed=4)
        dense = random_geometric_adjacency(50, radius=0.3, seed=4)
        assert np.array_equal(sparse_to_dense(csr), dense)

    def test_knn_matches_dense(self):
        rng = np.random.default_rng(4)
        pts = rng.random((50, 3))
        for k in (1, 4, 10):
            for symmetrize in (True, False):
                csr = knn_sparse(pts, k, symmetrize=symmetrize)
                dense = knn_adjacency(pts, k, symmetrize=symmetrize)
                assert np.allclose(sparse_to_dense(csr), dense)

    def test_knn_handles_duplicate_points(self):
        rng = np.random.default_rng(1)
        base = rng.random((6, 2))
        pts = np.vstack([base, base])            # every point duplicated
        csr = knn_sparse(pts, 3)
        dense = sparse_to_dense(csr)
        assert (dense == dense.T).all()
        # Each row found k real neighbours, never itself.
        assert (np.isfinite(dense).sum(axis=1) >= 3).all()

    def test_knn_validation(self):
        with pytest.raises(ValidationError):
            knn_sparse(np.ones(5), 2)            # 1-D points
        with pytest.raises(ValidationError):
            knn_sparse(np.ones((4, 2)), 4)       # k >= n

    def test_generated_csr_solves_end_to_end(self):
        csr = random_geometric_sparse(36, seed=2)
        with APSPEngine(EngineConfig()) as eng:
            result = eng.solve(csr, SolveRequest(solver="blocked-cb",
                                                 block_size=12))
        expected = semiring_closure(sparse_to_dense(csr), "shortest-path")
        assert np.allclose(result.distances, expected)

"""Tests for the synthetic graph generators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.graph.generators import (
    complete_adjacency,
    erdos_renyi_adjacency,
    erdos_renyi_graph,
    grid_adjacency,
    paper_edge_probability,
    path_adjacency,
    random_geometric_adjacency,
    star_adjacency,
)


def assert_valid_adjacency(adj: np.ndarray) -> None:
    """Structural invariants every generator must satisfy."""
    assert adj.dtype == np.float64
    assert adj.shape[0] == adj.shape[1]
    assert np.allclose(np.diag(adj), 0.0)
    finite = adj[np.isfinite(adj)]
    assert np.all(finite >= 0.0)
    # Symmetric including inf pattern.
    assert np.array_equal(np.isinf(adj), np.isinf(adj.T))
    both = np.isfinite(adj)
    assert np.allclose(adj[both], adj.T[both])


class TestPaperEdgeProbability:
    def test_formula(self):
        n = 1000
        assert paper_edge_probability(n) == pytest.approx(1.1 * math.log(n) / n)

    def test_single_vertex(self):
        assert paper_edge_probability(1) == 0.0

    def test_capped_at_one(self):
        assert paper_edge_probability(2, epsilon=10.0) <= 1.0


class TestErdosRenyi:
    def test_structure(self):
        assert_valid_adjacency(erdos_renyi_adjacency(50, seed=0))

    def test_deterministic_with_seed(self):
        a = erdos_renyi_adjacency(30, seed=5)
        b = erdos_renyi_adjacency(30, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = erdos_renyi_adjacency(30, seed=5)
        b = erdos_renyi_adjacency(30, seed=6)
        assert not np.array_equal(a, b)

    def test_unweighted_edges_are_unit(self):
        adj = erdos_renyi_adjacency(30, seed=1, weighted=False)
        finite = adj[np.isfinite(adj) & (adj > 0)]
        assert np.all(finite == 1.0)

    def test_weight_range(self):
        adj = erdos_renyi_adjacency(40, seed=2, weight_low=2.0, weight_high=3.0, p=0.5)
        weights = adj[np.isfinite(adj) & (adj > 0)]
        assert np.all((weights >= 2.0) & (weights < 3.0))

    def test_p_zero_gives_empty_graph(self):
        adj = erdos_renyi_adjacency(10, p=0.0, seed=0)
        assert np.isinf(adj[~np.eye(10, dtype=bool)]).all()

    def test_p_one_gives_complete_graph(self):
        adj = erdos_renyi_adjacency(10, p=1.0, seed=0)
        assert np.isfinite(adj).all()

    def test_edge_count_roughly_matches_probability(self):
        n, p = 200, 0.1
        adj = erdos_renyi_adjacency(n, p=p, seed=3)
        edges = np.isfinite(adj[np.triu_indices(n, 1)]).sum()
        expected = p * n * (n - 1) / 2
        assert 0.7 * expected < edges < 1.3 * expected

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            erdos_renyi_adjacency(10, p=1.5)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValidationError):
            erdos_renyi_adjacency(10, weight_low=0.0)
        with pytest.raises(ValidationError):
            erdos_renyi_adjacency(10, weight_low=5.0, weight_high=1.0)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValidationError):
            erdos_renyi_adjacency(0)

    def test_networkx_wrapper(self):
        graph = erdos_renyi_graph(20, seed=4)
        assert graph.number_of_nodes() == 20

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 60), st.integers(0, 10_000))
    def test_property_structure(self, n, seed):
        assert_valid_adjacency(erdos_renyi_adjacency(n, seed=seed))


class TestOtherGenerators:
    def test_path_distances_embedded(self):
        adj = path_adjacency(5, weight=2.0)
        assert adj[0, 1] == 2.0
        assert np.isinf(adj[0, 2])
        assert_valid_adjacency(adj)

    def test_grid_edge_count(self):
        adj = grid_adjacency(3, 4)
        edges = np.isfinite(adj[np.triu_indices(12, 1)]).sum()
        assert edges == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert_valid_adjacency(adj)

    def test_star_structure(self):
        adj = star_adjacency(6)
        assert np.isfinite(adj[0, 1:]).all()
        assert np.isinf(adj[1, 2])
        assert_valid_adjacency(adj)

    def test_complete_fixed_weight(self):
        adj = complete_adjacency(5, weight=3.0)
        off = adj[~np.eye(5, dtype=bool)]
        assert np.all(off == 3.0)

    def test_complete_random_weights(self):
        adj = complete_adjacency(5, weight=4.0, seed=1)
        assert_valid_adjacency(adj)
        assert np.isfinite(adj[~np.eye(5, dtype=bool)]).all()

    def test_geometric_structure_and_weights_are_distances(self):
        adj = random_geometric_adjacency(40, seed=2, radius=0.5)
        assert_valid_adjacency(adj)
        finite = adj[np.isfinite(adj) & (adj > 0)]
        assert np.all(finite <= 0.5 + 1e-12)

    def test_geometric_default_radius_connectivity(self):
        adj = random_geometric_adjacency(60, seed=3)
        # With the default radius almost every vertex should have a neighbour.
        degrees = np.isfinite(adj).sum(axis=1) - 1
        assert (degrees > 0).mean() > 0.9

    def test_geometric_invalid_dim(self):
        with pytest.raises(ValidationError):
            random_geometric_adjacency(10, dim=0)

"""Tests for adjacency construction, conversion and I/O."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.graph.adjacency import (
    adjacency_from_edges,
    adjacency_from_networkx,
    knn_adjacency,
    num_reachable_pairs,
    to_networkx,
    validate_adjacency,
)
from repro.graph.generators import erdos_renyi_adjacency, path_adjacency
from repro.graph.io import load_edge_list, load_matrix, save_edge_list, save_matrix


class TestAdjacencyFromEdges:
    def test_basic_undirected(self):
        adj = adjacency_from_edges(3, [(0, 1, 2.0), (1, 2)])
        assert adj[0, 1] == 2.0 and adj[1, 0] == 2.0
        assert adj[1, 2] == 1.0
        assert np.isinf(adj[0, 2])

    def test_directed(self):
        adj = adjacency_from_edges(3, [(0, 1, 2.0)], directed=True)
        assert adj[0, 1] == 2.0
        assert np.isinf(adj[1, 0])

    def test_parallel_edges_keep_minimum(self):
        adj = adjacency_from_edges(2, [(0, 1, 5.0), (0, 1, 2.0)])
        assert adj[0, 1] == 2.0

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValidationError):
            adjacency_from_edges(2, [(0, 5)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            adjacency_from_edges(2, [(0, 1, -1.0)])

    def test_malformed_edge_rejected(self):
        with pytest.raises(ValidationError):
            adjacency_from_edges(3, [(0, 1, 2.0, 9.0)])


class TestNetworkxConversion:
    def test_round_trip(self):
        adj = erdos_renyi_adjacency(20, seed=1)
        graph = to_networkx(adj)
        back = adjacency_from_networkx(graph)
        assert np.array_equal(adj, back)

    def test_edge_weights_preserved(self):
        adj = path_adjacency(4, weight=3.5)
        graph = to_networkx(adj)
        assert graph[0][1]["weight"] == 3.5


class TestKnnAdjacency:
    def test_each_vertex_has_at_least_k_neighbors(self):
        rng = np.random.default_rng(0)
        points = rng.random((30, 3))
        adj = knn_adjacency(points, k=4)
        degrees = (np.isfinite(adj) & (adj > 0)).sum(axis=1)
        assert np.all(degrees >= 4)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        adj = knn_adjacency(rng.random((20, 2)), k=3)
        assert np.allclose(np.where(np.isfinite(adj), adj, -1),
                           np.where(np.isfinite(adj.T), adj.T, -1))

    def test_weights_are_euclidean_distances(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        adj = knn_adjacency(points, k=1)
        assert adj[0, 1] == pytest.approx(5.0)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValidationError):
            knn_adjacency(np.zeros((3, 2)), k=3)

    def test_non_2d_points_rejected(self):
        with pytest.raises(ValidationError):
            knn_adjacency(np.zeros(5), k=1)


class TestValidateAdjacency:
    def test_fills_diagonal(self):
        adj = np.array([[5.0, 1.0], [1.0, 5.0]])
        out = validate_adjacency(adj)
        assert np.allclose(np.diag(out), 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            validate_adjacency(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_asymmetric_rejected_when_required(self):
        adj = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            validate_adjacency(adj, require_symmetric=True)

    def test_asymmetric_allowed_by_default(self):
        adj = np.array([[0.0, 1.0], [2.0, 0.0]])
        validate_adjacency(adj)


class TestReachablePairs:
    def test_counts_ordered_pairs(self):
        dist = np.array([[0.0, 1.0, np.inf],
                         [1.0, 0.0, np.inf],
                         [np.inf, np.inf, 0.0]])
        assert num_reachable_pairs(dist) == 2

    def test_complete_graph(self):
        dist = np.zeros((4, 4))
        assert num_reachable_pairs(dist) == 12


class TestIo:
    def test_edge_list_round_trip(self, tmp_path):
        adj = erdos_renyi_adjacency(25, seed=2)
        path = tmp_path / "graph.txt"
        count = save_edge_list(adj, path)
        assert count == np.isfinite(adj[np.triu_indices(25, 1)]).sum()
        loaded = load_edge_list(path)
        assert np.allclose(np.where(np.isfinite(adj), adj, -1),
                           np.where(np.isfinite(loaded), loaded, -1))

    def test_edge_list_directed_round_trip(self, tmp_path):
        adj = np.full((3, 3), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = 2.0
        path = tmp_path / "digraph.txt"
        save_edge_list(adj, path, directed=True)
        loaded = load_edge_list(path)
        assert loaded[0, 1] == 2.0
        assert np.isinf(loaded[1, 0])

    def test_matrix_round_trip(self, tmp_path):
        adj = erdos_renyi_adjacency(10, seed=3)
        path = tmp_path / "matrix.npy"
        save_matrix(adj, path)
        assert np.array_equal(load_matrix(path), adj)

    def test_malformed_edge_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValidationError):
            load_edge_list(path)

"""Tests for the sequential reference solvers (Floyd-Warshall, Dijkstra, Johnson, squaring)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SolverError, ValidationError
from repro.graph.generators import erdos_renyi_adjacency, path_adjacency, star_adjacency
from repro.sequential import (
    apsp_dijkstra,
    bellman_ford,
    dijkstra_single_source,
    floyd_warshall_blocked,
    floyd_warshall_numpy,
    floyd_warshall_reference,
    johnson_apsp,
    repeated_squaring_apsp,
)

ALL_APSP = [
    ("floyd_warshall_reference", floyd_warshall_reference),
    ("floyd_warshall_numpy", floyd_warshall_numpy),
    ("apsp_dijkstra", apsp_dijkstra),
    ("johnson", johnson_apsp),
    ("repeated_squaring", repeated_squaring_apsp),
    ("blocked_fw", lambda adj: floyd_warshall_blocked(adj, min(8, adj.shape[0]))),
]


class TestAllSequentialSolversAgree:
    @pytest.mark.parametrize("name,solver", ALL_APSP, ids=[n for n, _ in ALL_APSP])
    def test_on_er_graph(self, name, solver, small_er_graph, small_er_reference):
        assert np.allclose(solver(small_er_graph), small_er_reference)

    @pytest.mark.parametrize("name,solver", ALL_APSP, ids=[n for n, _ in ALL_APSP])
    def test_on_grid_graph(self, name, solver, grid_graph):
        expected = floyd_warshall_reference(grid_graph)
        assert np.allclose(solver(grid_graph), expected)

    @pytest.mark.parametrize("name,solver", ALL_APSP, ids=[n for n, _ in ALL_APSP])
    def test_on_disconnected_graph(self, name, solver):
        adj = np.full((6, 6), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = adj[1, 0] = 1.0
        adj[3, 4] = adj[4, 3] = 2.0
        dist = solver(adj)
        assert dist[0, 1] == 1.0
        assert np.isinf(dist[0, 3])
        assert dist[3, 4] == 2.0

    @pytest.mark.parametrize("name,solver", ALL_APSP, ids=[n for n, _ in ALL_APSP])
    def test_single_vertex(self, name, solver):
        adj = np.zeros((1, 1))
        assert solver(adj)[0, 0] == 0.0


class TestDijkstra:
    def test_single_source_path_graph(self):
        adj = path_adjacency(6)
        dist = dijkstra_single_source(adj, 0)
        assert np.array_equal(dist, np.arange(6, dtype=float))

    def test_single_source_star(self):
        dist = dijkstra_single_source(star_adjacency(5), 1)
        assert dist[1] == 0.0 and dist[0] == 1.0 and dist[2] == 2.0

    def test_invalid_source(self):
        with pytest.raises(ValidationError):
            dijkstra_single_source(path_adjacency(4), 9)

    def test_respects_weights(self):
        adj = np.full((3, 3), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = adj[1, 0] = 10.0
        adj[0, 2] = adj[2, 0] = 1.0
        adj[2, 1] = adj[1, 2] = 1.0
        dist = dijkstra_single_source(adj, 0)
        assert dist[1] == 2.0  # through vertex 2, not the direct edge


class TestBellmanFordAndJohnson:
    def test_bellman_ford_matches_dijkstra_nonnegative(self):
        adj = erdos_renyi_adjacency(20, seed=3)
        assert np.allclose(bellman_ford(adj, 0), dijkstra_single_source(adj, 0))

    def test_bellman_ford_handles_negative_edges(self):
        adj = np.full((3, 3), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = 5.0
        adj[1, 2] = -2.0
        dist = bellman_ford(adj, 0)
        assert dist[2] == 3.0

    def test_bellman_ford_detects_negative_cycle(self):
        adj = np.full((2, 2), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = -1.0
        adj[1, 0] = -1.0
        with pytest.raises(SolverError):
            bellman_ford(adj, 0)

    def test_johnson_directed_with_negative_edges(self):
        adj = np.full((4, 4), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = 2.0
        adj[1, 2] = -1.0
        adj[2, 3] = 3.0
        adj[0, 3] = 10.0
        dist = johnson_apsp(adj)
        assert dist[0, 3] == 4.0
        assert dist[0, 2] == 1.0

    def test_johnson_matches_scipy_on_directed_graph(self):
        rng = np.random.default_rng(0)
        n = 15
        adj = np.full((n, n), np.inf)
        np.fill_diagonal(adj, 0.0)
        mask = rng.random((n, n)) < 0.3
        adj[mask] = rng.uniform(1.0, 5.0, size=mask.sum())
        np.fill_diagonal(adj, 0.0)
        from scipy.sparse.csgraph import floyd_warshall as scipy_fw
        expected = scipy_fw(adj, directed=True)
        assert np.allclose(johnson_apsp(adj), expected)


class TestRepeatedSquaring:
    def test_iteration_count_returned(self):
        adj = erdos_renyi_adjacency(17, seed=4)
        dist, iterations = repeated_squaring_apsp(adj, return_iterations=True)
        assert iterations == 4  # ceil(log2(16))
        assert np.allclose(dist, floyd_warshall_reference(adj))


class TestPropertyInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 24), st.integers(0, 100_000))
    def test_all_solvers_agree_randomized(self, n, seed):
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.3)
        reference = floyd_warshall_reference(adj)
        for name, solver in ALL_APSP:
            if name == "blocked_fw" and n < 8:
                continue
            assert np.allclose(solver(adj), reference), name

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 100_000))
    def test_distances_bounded_by_direct_edges(self, n, seed):
        adj = erdos_renyi_adjacency(n, seed=seed, p=0.4)
        dist = floyd_warshall_reference(adj)
        assert np.all(dist <= adj + 1e-9)

"""Concurrency hammer for the serving layer.

Many threads issue route queries against one :class:`RouteService` (and its
shared :class:`ParentRowCache`) while updates invalidate rows underneath —
answers must stay correct, counters must reconcile, and concurrent misses for
one source must be deduplicated into a single row solve.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg import witness
from repro.sequential.floyd_warshall import floyd_warshall_reference
from repro.graph.adjacency import validate_adjacency
from repro.serve.cache import ParentRowCache
from repro.serve.service import RouteService

N = 48
THREADS = 8
QUERIES_PER_THREAD = 60


@pytest.fixture(scope="module")
def adjacency():
    return erdos_renyi_adjacency(N, seed=21)


@pytest.fixture(scope="module")
def closure(adjacency):
    return floyd_warshall_reference(adjacency)


def _service(closure, adjacency, **kwargs):
    return RouteService(closure, validate_adjacency(adjacency),
                        "shortest-path", **kwargs)


class TestCacheThreadSafety:
    def test_concurrent_store_lookup_invalidate_consistent(self):
        cache = ParentRowCache(max_rows=8)
        rows = {s: np.full(N, s, dtype=np.int32) for s in range(16)}
        stop = threading.Event()
        errors = []

        def worker(base):
            try:
                while not stop.is_set():
                    for s in range(base, 16, 4):
                        cache.store(s, rows[s])
                        got = cache.lookup(s)
                        if got is not None and got[0] != s:
                            errors.append(f"torn row for {s}")
                        cache.invalidate(s if s % 3 == 0 else None)
            except Exception as exc:  # noqa: BLE001 — surfaced in the assert
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        stop.wait(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.hits + cache.misses > 0
        stats = cache.stats()
        assert stats["cache_rows"] == len(cache.sources())
        assert stats["cache_bytes"] >= 0


class TestRouteHammer:
    def test_hammer_queries_match_reference(self, adjacency, closure):
        service = _service(closure, adjacency, max_rows=6)
        rng = np.random.default_rng(7)
        pairs = [(int(rng.integers(N)), int(rng.integers(N)))
                 for _ in range(THREADS * QUERIES_PER_THREAD)]
        chunks = [pairs[i::THREADS] for i in range(THREADS)]
        failures = []

        def worker(chunk):
            for src, dst in chunk:
                answer = service.route(src, dst)
                expected = closure[src, dst]
                if not (answer.distance == expected
                        or (np.isinf(answer.distance) and np.isinf(expected))):
                    failures.append((src, dst, answer.distance, expected))

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(worker, chunks))
        assert failures == []
        stats = service.stats()
        assert stats["queries"] == len(pairs)
        # Counter reconciliation: every lookup was a hit or a miss, and the
        # cache never holds more rows than its cap.
        assert stats["cache_hits"] + stats["cache_misses"] >= stats["cache_rows"]
        assert stats["cache_rows"] <= 6

    def test_concurrent_misses_for_one_source_solve_once(self, adjacency,
                                                         closure, monkeypatch):
        service = _service(closure, adjacency)
        solves = []
        real = witness.solve_parent_row
        gate = threading.Barrier(THREADS, timeout=5.0)

        def counting_solve(source, *args, **kwargs):
            solves.append(source)
            return real(source, *args, **kwargs)

        monkeypatch.setattr(witness, "solve_parent_row", counting_solve)

        def worker():
            gate.wait()
            return service.parent_row(3)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            rows = [f.result() for f in
                    [pool.submit(worker) for _ in range(THREADS)]]
        assert solves == [3]  # deduplicated: exactly one solve
        for row in rows:
            np.testing.assert_array_equal(row, rows[0])
        stats = service.stats()
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == THREADS - 1

    def test_hammer_with_concurrent_invalidation(self, adjacency, closure):
        """Queries racing notify_update: every answer matches the reference."""
        service = _service(closure, adjacency, max_rows=4)
        rng = np.random.default_rng(13)
        stop = threading.Event()
        failures = []

        def invalidator():
            while not stop.is_set():
                service.notify_update([int(rng.integers(N))])

        def querier(seed):
            q_rng = np.random.default_rng(seed)
            for _ in range(QUERIES_PER_THREAD):
                src, dst = int(q_rng.integers(N)), int(q_rng.integers(N))
                got = service.route(src, dst).distance
                want = closure[src, dst]
                if not (got == want or (np.isinf(got) and np.isinf(want))):
                    failures.append((src, dst, got, want))

        inv = threading.Thread(target=invalidator)
        inv.start()
        try:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                list(pool.map(querier, range(THREADS)))
        finally:
            stop.set()
            inv.join()
        assert failures == []

    def test_degradation_flips_are_thread_safe(self, adjacency, closure):
        service = _service(closure, adjacency)
        stop = threading.Event()

        def flipper():
            while not stop.is_set():
                service.mark_degraded(RuntimeError("boom"))
                service.mark_healthy()

        flip = threading.Thread(target=flipper)
        flip.start()
        try:
            for _ in range(200):
                stats = service.stats()
                if stats["degraded"]:
                    assert stats["last_error"] is not None
        finally:
            stop.set()
            flip.join()
        service.mark_healthy()
        assert service.stats()["degraded"] is False

"""Tests for the serving analytics stream: percentiles, stages, reservoir."""

import pytest

from repro.serve import STAGES, ServeAnalytics


class TestRecordQuery:
    def test_counters(self):
        analytics = ServeAnalytics()
        analytics.record_query(0.1)
        analytics.record_query(0.2, unreachable=True)
        analytics.record_query(0.3, error=True)
        snap = analytics.as_dict()
        assert snap["queries"] == 3
        assert snap["unreachable"] == 1
        assert snap["errors"] == 1

    def test_latency_percentiles_exact_below_capacity(self):
        analytics = ServeAnalytics()
        for ms in range(1, 101):                    # 1ms .. 100ms
            analytics.record_query(ms / 1000)
        snap = analytics.as_dict()
        assert snap["latency_mean_s"] == pytest.approx(0.0505)
        assert snap["latency_max_s"] == pytest.approx(0.1)
        assert snap["latency_p50_s"] == pytest.approx(0.0505)
        assert snap["latency_p95_s"] == pytest.approx(0.09505, rel=1e-3)
        assert snap["latency_sampled"] is False

    def test_stage_attribution_sums_seconds_and_counts(self):
        analytics = ServeAnalytics()
        analytics.record_query(0.5, stages={"row_solve": 0.4, "path_walk": 0.1})
        analytics.record_query(0.2, stages={"path_walk": 0.2})
        snap = analytics.as_dict()
        assert snap["stage_seconds"]["row_solve"] == pytest.approx(0.4)
        assert snap["stage_seconds"]["path_walk"] == pytest.approx(0.3)
        assert snap["stage_counts"] == {"row_solve": 1, "path_walk": 2, "repair": 0}

    def test_stage_shape_is_complete_even_when_idle(self):
        snap = ServeAnalytics().as_dict()
        assert tuple(snap["stage_seconds"]) == STAGES
        assert tuple(snap["stage_counts"]) == STAGES
        assert all(v == 0.0 for v in snap["stage_seconds"].values())

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown serving stage"):
            ServeAnalytics().record_query(0.1, stages={"warp_drive": 1.0})


class TestReservoir:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ServeAnalytics(reservoir=0)

    def test_overflow_flags_sampling_and_bounds_memory(self):
        analytics = ServeAnalytics(reservoir=8)
        for _ in range(100):
            analytics.record_query(0.001)
        snap = analytics.as_dict()
        assert snap["queries"] == 100               # exact despite sampling
        assert snap["latency_sampled"] is True
        assert len(analytics._latencies) == 8
        assert snap["latency_p99_s"] == pytest.approx(0.001)

    def test_sampling_is_seeded_and_reproducible(self):
        def run():
            analytics = ServeAnalytics(reservoir=4)
            for i in range(50):
                analytics.record_query(i / 1000)
            return analytics.as_dict()["latency_p50_s"]
        assert run() == run()

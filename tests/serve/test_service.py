"""Tests for RouteService and the engine's serving session.

The acceptance surface of the serving layer: lazily solved parent rows give
the *same* routes as a full ``paths=True`` solve, the cache footprint stays
within its budget while doing so, and ``stats()`` reports the latency /
hit-rate / per-stage analytics.
"""

import dataclasses

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, SolverError, ValidationError
from repro.core.engine import APSPEngine
from repro.core.request import RouteQuery, SolveRequest
from repro.graph.adjacency import validate_adjacency
from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.algebra import get_algebra
from repro.linalg.kernels import semiring_closure
from repro.linalg.witness import reconstruct_path
from repro.sequential.floyd_warshall import floyd_warshall_reference
from repro.serve import RouteService, fold_route

N = 24


def dense_to_csr(adjacency):
    """Canonical CSR of a canonical dense adjacency (finite off-diagonal)."""
    import scipy.sparse as sp
    mask = np.isfinite(adjacency) & ~np.eye(adjacency.shape[0], dtype=bool)
    rows, cols = np.nonzero(mask)
    return sp.csr_matrix((adjacency[rows, cols], (rows, cols)),
                         shape=adjacency.shape)


@pytest.fixture(scope="module")
def adjacency():
    return erdos_renyi_adjacency(N, seed=3)


@pytest.fixture(scope="module")
def service(adjacency):
    closure = floyd_warshall_reference(adjacency)
    edges = validate_adjacency(adjacency, algebra="shortest-path")
    return RouteService(closure, edges, "shortest-path")


@pytest.fixture(scope="module")
def full_parents(adjacency, engine):
    return engine.solve(adjacency, paths=True).parents


@pytest.fixture(scope="module")
def engine(engine_config):
    eng = APSPEngine(engine_config).start()
    yield eng
    eng.stop()


@pytest.fixture(scope="module")
def engine_config():
    from repro.common.config import EngineConfig
    return EngineConfig(backend="serial", num_executors=2, cores_per_executor=2)


class TestRouteCorrectness:
    def test_every_pair_matches_the_full_parents_plane(self, service, adjacency,
                                                       full_parents):
        """Lazy rows answer exactly what a full ``paths=True`` solve answers."""
        closure = service.distances
        for src in range(N):
            for dst in range(N):
                answer = service.route(src, dst)
                assert answer.distance == closure[src, dst]
                if not np.isfinite(closure[src, dst]):
                    assert answer.path is None
                    continue
                reference = tuple(reconstruct_path(full_parents, src, dst))
                assert answer.path[0] == src and answer.path[-1] == dst
                # Both paths must realize the optimal closure weight.
                assert fold_route(service.adjacency, answer.path,
                                  service.algebra) == pytest.approx(
                                      closure[src, dst])
                assert fold_route(service.adjacency, reference,
                                  service.algebra) == pytest.approx(
                                      closure[src, dst])

    def test_trivial_route(self, service):
        answer = service.route(5, 5)
        assert answer.path == (5,)
        assert answer.distance == 0.0
        assert answer.cached is None
        assert answer.num_edges == 0 and answer.reachable

    def test_out_of_range_endpoints_rejected(self, service):
        with pytest.raises(ValidationError, match="out of range"):
            service.route(0, N)
        with pytest.raises(ValidationError, match="out of range"):
            service.route(-1, 0)

    def test_distance_shortcut_matches_closure(self, service):
        assert service.distance(2, 7) == service.distances[2, 7]


class TestUnreachable:
    def test_unreachable_pair_is_an_answer_not_an_error(self):
        adj = np.full((4, 4), np.inf)
        np.fill_diagonal(adj, 0.0)
        adj[0, 1] = 1.0                       # 2, 3 are isolated
        closure = floyd_warshall_reference(adj)
        service = RouteService(closure, validate_adjacency(adj), "shortest-path")
        answer = service.route(0, 3)
        assert answer.path is None and not answer.reachable
        assert np.isinf(answer.distance)
        assert answer.cached is None          # no row solve was paid
        assert service.stats()["unreachable"] == 1
        assert len(service.cache) == 0


class TestPlateauRepair:
    def test_reachability_routes_survive_plateaus(self, adjacency):
        """Boolean closures are all-plateau; repairs must kick in and still
        produce walkable, edge-by-edge-valid routes."""
        algebra = get_algebra("reachability")
        edges = validate_adjacency(adjacency, algebra=algebra, dtype="bool")
        closure = semiring_closure(adjacency, algebra, dtype="bool")
        service = RouteService(closure, edges, algebra)
        answers = service.routes((src, dst)
                                 for src in range(0, N, 3)
                                 for dst in range(N))
        for answer in answers:
            assert answer.reachable == bool(closure[answer.src, answer.dst])
            if answer.path is not None and len(answer.path) > 1:
                assert bool(fold_route(edges, answer.path, algebra)) is True
        repaired = sum(a.repaired for a in answers)
        assert repaired == service.analytics.stage_counts["repair"]
        assert service.stats()["stage_counts"]["row_solve"] >= 1


class TestCacheBehaviour:
    def test_hit_miss_accounting_across_queries(self, adjacency):
        closure = floyd_warshall_reference(adjacency)
        service = RouteService(closure, validate_adjacency(adjacency),
                               "shortest-path")
        reach0 = [d for d in range(1, N) if np.isfinite(closure[0, d])]
        reach1 = [d for d in range(N) if d != 1 and np.isfinite(closure[1, d])]
        first = service.route(0, reach0[0])
        second = service.route(0, reach0[1])
        other = service.route(1, reach1[0])
        assert first.cached is False
        assert second.cached is True          # same source row reused
        assert other.cached is False
        stats = service.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 2

    def test_byte_budget_holds_at_every_step(self, adjacency):
        """The acceptance bound: peak parents memory never exceeds the budget."""
        closure = floyd_warshall_reference(adjacency)
        row_bytes = 4 * N                     # one int32 parent row
        budget = 3 * row_bytes
        service = RouteService(closure, validate_adjacency(adjacency),
                               "shortest-path", budget_bytes=budget)
        rng = np.random.default_rng(0)
        for _ in range(200):
            service.route(int(rng.integers(N)), int(rng.integers(N)))
            assert service.cache.nbytes <= budget
        stats = service.stats()
        assert stats["cache_evictions"] > 0
        assert stats["cache_rows"] <= 3

    def test_max_rows_budget(self, adjacency):
        closure = floyd_warshall_reference(adjacency)
        service = RouteService(closure, validate_adjacency(adjacency),
                               "shortest-path", max_rows=2)
        for src in range(6):
            service.route(src, (src + 1) % N)
            assert len(service.cache) <= 2


class TestSparseInput:
    def test_csr_adjacency_round_trip(self, adjacency):
        csr = dense_to_csr(adjacency)
        edges = validate_adjacency(csr, allow_sparse=True)
        closure = floyd_warshall_reference(adjacency)
        service = RouteService(closure, edges, "shortest-path")
        dense_service = RouteService(closure, validate_adjacency(adjacency),
                                     "shortest-path")
        for src, dst in ((0, 7), (3, 14), (9, 2), (5, 5)):
            sparse_answer = service.route(src, dst)
            dense_answer = dense_service.route(src, dst)
            assert sparse_answer.path == dense_answer.path
            assert sparse_answer.distance == dense_answer.distance


class TestConstruction:
    def test_non_square_closure_rejected(self):
        with pytest.raises(ValidationError, match="square"):
            RouteService(np.zeros((3, 4)), np.zeros((3, 4)), "shortest-path")

    def test_shape_mismatch_rejected(self, adjacency):
        closure = floyd_warshall_reference(adjacency)
        with pytest.raises(ValidationError, match="does not match"):
            RouteService(closure, np.zeros((N + 1, N + 1)), "shortest-path")

    def test_witnessless_algebra_rejected(self, adjacency):
        no_witness = dataclasses.replace(get_algebra("shortest-path"),
                                         name="no-witness", witness_select=None)
        closure = floyd_warshall_reference(adjacency)
        with pytest.raises(ValidationError, match="witness"):
            RouteService(closure, validate_adjacency(adjacency), no_witness)


class TestStats:
    def test_stats_merges_analytics_cache_and_geometry(self, adjacency):
        closure = floyd_warshall_reference(adjacency)
        service = RouteService(closure, validate_adjacency(adjacency),
                               "shortest-path", budget_bytes=1 << 20)
        service.routes([(0, 1), (0, 2), (3, 4)])
        stats = service.stats()
        assert stats["n"] == N
        assert stats["algebra"] == "shortest-path"
        for key in ("queries", "latency_p50_s", "latency_p95_s", "latency_p99_s",
                    "stage_seconds", "stage_counts", "cache_hits",
                    "cache_misses", "cache_hit_rate", "cache_evictions",
                    "cache_bytes", "cache_budget_bytes"):
            assert key in stats
        assert stats["queries"] == 3
        assert stats["cache_budget_bytes"] == 1 << 20


class TestEngineIntegration:
    def test_route_requires_an_open_session(self, engine_config):
        with APSPEngine(engine_config) as engine:
            assert engine.service is None
            with pytest.raises(SolverError, match="no serving session"):
                engine.route(0, 1)
            with pytest.raises(SolverError, match="no serving session"):
                engine.routes([(0, 1)])

    def test_paths_request_rejected(self, engine, adjacency):
        with pytest.raises(ConfigurationError, match="lazily"):
            engine.serve(adjacency, SolveRequest(paths=True))

    def test_serve_route_and_stats(self, engine, adjacency, full_parents):
        service = engine.serve(adjacency, max_rows=4)
        assert engine.service is service
        answer = engine.route(0, 7)
        reference = tuple(reconstruct_path(full_parents, 0, 7))
        assert answer.path[0] == 0 and answer.path[-1] == 7
        assert fold_route(service.adjacency, answer.path,
                          service.algebra) == pytest.approx(
                              fold_route(service.adjacency, reference,
                                         service.algebra))
        assert engine.stats()["serve"]["queries"] == 1

    def test_routes_accepts_route_queries(self, engine, adjacency):
        engine.serve(adjacency)
        answers = engine.routes([RouteQuery(0, 3), (2, 9), RouteQuery(4, 4)])
        assert [(a.src, a.dst) for a in answers] == [(0, 3), (2, 9), (4, 4)]

    def test_keep_result_retains_the_solve(self, engine, adjacency):
        service = engine.serve(adjacency, keep_result=True)
        assert service.closure_result is not None
        assert service.closure_result.distances is service.distances
        assert engine.serve(adjacency).closure_result is None

    def test_serve_on_sparse_input(self, engine, adjacency):
        service = engine.serve(dense_to_csr(adjacency), max_rows=2)
        answer = engine.route(1, 8)
        closure = floyd_warshall_reference(adjacency)
        assert answer.distance == pytest.approx(closure[1, 8])
        assert len(service.cache) <= 2


class TestRouteQuery:
    def test_coercion_and_pair(self):
        query = RouteQuery("3", np.int64(4), tag="replay")
        assert query.src == 3 and isinstance(query.src, int)
        assert query.pair == (3, 4)
        assert "replay" in query.describe()

    @pytest.mark.parametrize("kwargs", [
        {"src": -1, "dst": 0},
        {"src": 0, "dst": -2},
        {"src": "x", "dst": 0},
        {"src": None, "dst": 0},
    ])
    def test_invalid_endpoints_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RouteQuery(**kwargs)


class TestNotifyUpdate:
    def _service(self, adjacency):
        closure = floyd_warshall_reference(adjacency)
        edges = validate_adjacency(adjacency, algebra="shortest-path")
        return RouteService(closure, edges, "shortest-path")

    def test_changed_rows_drop_only_those_sources(self, adjacency):
        service = self._service(adjacency)
        service.route(0, 5)
        service.route(7, 3)
        dropped = service.notify_update([0, 9])
        assert dropped == 1                      # only source 0 was cached
        assert service.stats()["cache_invalidations"] == 1

    def test_none_means_drop_everything(self, adjacency):
        service = self._service(adjacency)
        service.route(0, 5)
        service.route(7, 3)
        assert service.notify_update() == 2

    def test_adjacency_rebind_shape_checked(self, adjacency):
        service = self._service(adjacency)
        with pytest.raises(ValidationError):
            service.notify_update([0], adjacency=np.eye(3))

    def test_rebound_adjacency_serves_new_routes(self, adjacency):
        service = self._service(adjacency)
        new_adjacency = validate_adjacency(adjacency, algebra="shortest-path")
        new_adjacency[0, 5] = new_adjacency[5, 0] = 0.001
        closure = service.distances
        closure[:] = floyd_warshall_reference(new_adjacency)
        service.notify_update(adjacency=new_adjacency)
        answer = service.route(0, 5)
        assert tuple(answer.path) == (0, 5)
        assert np.isclose(answer.distance, 0.001)

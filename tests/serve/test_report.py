"""Tests for the shared route formatter, pairs-file parsing and the report."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.common.errors import SolverError
from repro.serve import (ROUTE_ERROR, ROUTE_MISMATCH, ROUTE_OK,
                         ROUTE_UNREACHABLE, ServeAnalytics, fold_route,
                         format_route, load_pairs_file, render_report)


def chain_adjacency(weights):
    """Prepared dense (min, +) adjacency of a weighted chain 0-1-2-..."""
    n = len(weights) + 1
    adj = np.full((n, n), np.inf)
    np.fill_diagonal(adj, 0.0)
    for i, w in enumerate(weights):
        adj[i, i + 1] = w
    return adj


class TestFoldRoute:
    def test_dense_min_plus_fold(self):
        adj = chain_adjacency([2.0, 3.0, 4.0])
        assert fold_route(adj, (0, 1, 2, 3), "shortest-path") == pytest.approx(9.0)

    def test_dense_missing_edge_raises(self):
        adj = chain_adjacency([2.0, 3.0])
        with pytest.raises(SolverError, match="not an edge"):
            fold_route(adj, (0, 2), "shortest-path")

    def test_trivial_path_folds_to_one(self):
        adj = chain_adjacency([2.0])
        assert fold_route(adj, (0,), "shortest-path") == 0.0

    def test_csr_membership_and_fold(self):
        csr = sp.csr_matrix(([2.0, 3.0], ([0, 1], [1, 2])), shape=(3, 3))
        assert fold_route(csr, (0, 1, 2), "shortest-path") == pytest.approx(5.0)
        with pytest.raises(SolverError, match="not an edge"):
            fold_route(csr, (0, 2), "shortest-path")

    def test_csr_explicit_zero_weight_is_an_edge(self):
        """A stored 0.0 entry is a real zero-weight edge, not a missing one."""
        csr = sp.csr_matrix(([0.0], ([0], [1])), shape=(2, 2))
        assert fold_route(csr, (0, 1), "shortest-path") == 0.0

    def test_bool_reachability_fold(self):
        adj = np.eye(3, dtype=bool)
        adj[0, 1] = adj[1, 2] = True
        assert bool(fold_route(adj, (0, 1, 2), "reachability")) is True
        with pytest.raises(SolverError, match="not an edge"):
            fold_route(adj, (2, 0), "reachability")


class TestFormatRoute:
    def test_ok_verdict(self):
        adj = chain_adjacency([2.0, 3.0])
        line, verdict = format_route(0, 2, (0, 1, 2), 5.0, adj, "shortest-path")
        assert verdict == ROUTE_OK
        assert "route 0 -> 2: 0 -> 1 -> 2" in line
        assert "2 edge(s)" in line and "match" in line

    def test_mismatch_verdict(self):
        adj = chain_adjacency([2.0, 3.0])
        line, verdict = format_route(0, 2, (0, 1, 2), 4.0, adj, "shortest-path")
        assert verdict == ROUTE_MISMATCH
        assert "MISMATCH" in line

    def test_unreachable_verdict(self):
        line, verdict = format_route(0, 2, None, np.inf, chain_adjacency([1.0]),
                                     "shortest-path")
        assert verdict == ROUTE_UNREACHABLE
        assert line == "route 0 -> 2: no path"

    def test_error_verdict_on_non_edge_step(self):
        adj = chain_adjacency([2.0, 3.0])
        line, verdict = format_route(0, 2, (0, 2), 5.0, adj, "shortest-path")
        assert verdict == ROUTE_ERROR
        assert "error" in line

    def test_bool_closure_renders_reachable(self):
        adj = np.eye(2, dtype=bool)
        adj[0, 1] = True
        line, verdict = format_route(0, 1, (0, 1), np.True_, adj, "reachability")
        assert verdict == ROUTE_OK
        assert "reachable" in line

    def test_tolerances_forwarded(self):
        adj = chain_adjacency([2.0])
        _, strict = format_route(0, 1, (0, 1), 2.001, adj, "shortest-path")
        _, loose = format_route(0, 1, (0, 1), 2.001, adj, "shortest-path",
                                tolerances={"atol": 0.01})
        assert strict == ROUTE_MISMATCH
        assert loose == ROUTE_OK


class TestLoadPairsFile:
    def test_whitespace_commas_and_comments(self, tmp_path):
        f = tmp_path / "pairs.txt"
        f.write_text("# replay\n0 5\n1,7  # inline comment\n\n 2\t3 \n")
        assert load_pairs_file(str(f)) == [(0, 5), (1, 7), (2, 3)]

    def test_bad_line_reports_line_number(self, tmp_path):
        f = tmp_path / "pairs.txt"
        f.write_text("0 1\n0 1 2\n")
        with pytest.raises(SolverError, match=r":2:"):
            load_pairs_file(str(f))

    def test_non_integer_field_rejected(self, tmp_path):
        f = tmp_path / "pairs.txt"
        f.write_text("0 x\n")
        with pytest.raises(SolverError, match=r":1:"):
            load_pairs_file(str(f))

    def test_range_check_against_n(self, tmp_path):
        f = tmp_path / "pairs.txt"
        f.write_text("0 1\n0 9\n")
        assert load_pairs_file(str(f), n=10) == [(0, 1), (0, 9)]
        with pytest.raises(SolverError, match="out of range"):
            load_pairs_file(str(f), n=5)


class TestRenderReport:
    def stats(self, **overrides):
        analytics = ServeAnalytics()
        analytics.record_query(0.002, stages={"row_solve": 0.001,
                                              "path_walk": 0.0005})
        analytics.record_query(0.0001, unreachable=True)
        base = {"n": 64, "algebra": "shortest-path"}
        base.update(analytics.as_dict())
        base.update({
            "cache_rows": 1, "cache_bytes": 256, "cache_budget_bytes": 4096,
            "cache_max_rows": None, "cache_hits": 0, "cache_misses": 1,
            "cache_evictions": 0, "cache_hit_rate": 0.0,
        })
        base.update(overrides)
        return base

    def test_report_carries_every_section(self):
        report = render_report(self.stats())
        assert "2 queries on n=64 [shortest-path], 1 unreachable" in report
        assert "latency:" in report and "p95" in report and "p99" in report
        assert "cache: 0 hit(s) / 1 miss(es)" in report
        assert "4.0KB" in report                   # the budget, humanized
        assert "stages:" in report and "row_solve 1x" in report

    def test_unbounded_budget_and_errors_called_out(self):
        report = render_report(self.stats(cache_budget_bytes=None, errors=3))
        assert "unbounded" in report
        assert "3 ERROR(S)" in report

    def test_max_rows_budget_rendered(self):
        assert "max 8 rows" in render_report(self.stats(cache_max_rows=8))

"""Tests for the LRU parent-row cache: eviction order, budgets, accounting."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.serve import ParentRowCache


def row(n=8, fill=0):
    return np.full(n, fill, dtype=np.int32)


class TestBudgetValidation:
    @pytest.mark.parametrize("kwargs", [
        {"budget_bytes": 0},
        {"budget_bytes": -1},
        {"max_rows": 0},
        {"max_rows": -2},
    ])
    def test_non_positive_budgets_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ParentRowCache(**kwargs)

    def test_none_means_unbounded(self):
        cache = ParentRowCache()
        for source in range(100):
            cache.store(source, row())
        assert len(cache) == 100
        assert cache.evictions == 0


class TestLookupAccounting:
    def test_every_lookup_is_a_hit_or_a_miss(self):
        cache = ParentRowCache()
        cache.store(3, row())
        assert cache.lookup(3) is not None
        assert cache.lookup(4) is None
        assert cache.lookup(3) is not None
        assert cache.hits == 2
        assert cache.misses == 1
        stats = cache.stats()
        assert stats["cache_hits"] + stats["cache_misses"] == 3
        assert stats["cache_hit_rate"] == pytest.approx(2 / 3)

    def test_hit_rate_zero_before_any_lookup(self):
        assert ParentRowCache().stats()["cache_hit_rate"] == 0.0

    def test_contains_does_not_count(self):
        cache = ParentRowCache()
        cache.store(1, row())
        assert 1 in cache and 2 not in cache
        assert cache.hits == 0 and cache.misses == 0


class TestLRUEviction:
    def test_row_count_budget_evicts_least_recently_used(self):
        cache = ParentRowCache(max_rows=2)
        cache.store(0, row())
        cache.store(1, row())
        assert cache.store(2, row()) == 1          # evicts 0
        assert cache.sources() == [1, 2]

    def test_lookup_refreshes_recency(self):
        cache = ParentRowCache(max_rows=2)
        cache.store(0, row())
        cache.store(1, row())
        cache.lookup(0)                            # 0 is now the MRU
        cache.store(2, row())                      # so 1 is the victim
        assert cache.sources() == [0, 2]
        assert cache.evictions == 1

    def test_byte_budget_evicts_until_under(self):
        r = row(16)                                # 64 bytes each
        cache = ParentRowCache(budget_bytes=2 * r.nbytes)
        cache.store(0, r)
        cache.store(1, r)
        assert cache.nbytes == 2 * r.nbytes
        evicted = cache.store(2, r)
        assert evicted == 1
        assert cache.nbytes <= cache.budget_bytes
        assert cache.sources() == [1, 2]

    def test_newest_row_exempt_from_its_own_sweep(self):
        """A budget tighter than one row degenerates to a one-row cache."""
        cache = ParentRowCache(budget_bytes=1)
        cache.store(0, row(16))
        assert len(cache) == 1                     # kept despite the budget
        cache.store(1, row(16))
        assert cache.sources() == [1]              # old row evicted, new kept
        assert cache.evictions == 1

    def test_tighter_of_both_budgets_wins(self):
        r = row(16)
        cache = ParentRowCache(budget_bytes=10 * r.nbytes, max_rows=2)
        for source in range(5):
            cache.store(source, r)
        assert len(cache) == 2
        assert cache.evictions == 3

    def test_replacing_a_row_does_not_double_count_bytes(self):
        cache = ParentRowCache()
        cache.store(0, row(16))
        cache.store(0, row(32))
        assert len(cache) == 1
        assert cache.nbytes == row(32).nbytes

    def test_eviction_order_is_strict_lru(self):
        cache = ParentRowCache(max_rows=3)
        for source in (0, 1, 2):
            cache.store(source, row())
        cache.lookup(1)
        cache.lookup(0)
        cache.store(3, row())                      # evicts 2 (the coldest)
        cache.store(4, row())                      # then 1
        assert cache.sources() == [0, 3, 4]


class TestClearAndStats:
    def test_clear_drops_rows_but_keeps_counters(self):
        cache = ParentRowCache()
        cache.store(0, row())
        cache.lookup(0)
        cache.lookup(7)
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_stats_shape(self):
        stats = ParentRowCache(budget_bytes=1024, max_rows=4).stats()
        assert set(stats) == {
            "cache_rows", "cache_bytes", "cache_budget_bytes", "cache_max_rows",
            "cache_hits", "cache_misses", "cache_evictions", "cache_hit_rate",
            "cache_invalidations",
        }
        assert stats["cache_budget_bytes"] == 1024
        assert stats["cache_max_rows"] == 4


class TestInvalidation:
    def test_invalidate_single_source(self):
        cache = ParentRowCache()
        cache.store(0, row())
        cache.store(1, row())
        assert cache.invalidate(0) == 1
        assert cache.lookup(0) is None and cache.lookup(1) is not None
        assert cache.invalidations == 1

    def test_invalidate_uncached_source_is_a_noop(self):
        cache = ParentRowCache()
        cache.store(0, row())
        assert cache.invalidate(5) == 0
        assert cache.invalidations == 0 and len(cache) == 1

    def test_invalidate_all(self):
        cache = ParentRowCache()
        for source in range(4):
            cache.store(source, row())
        assert cache.invalidate() == 4
        assert len(cache) == 0 and cache.invalidations == 4

    def test_invalidations_do_not_count_as_evictions(self):
        cache = ParentRowCache(max_rows=2)
        cache.store(0, row())
        cache.store(1, row())
        cache.store(2, row())          # evicts 0
        cache.invalidate(1)
        assert cache.evictions == 1 and cache.invalidations == 1
        assert cache.stats()["cache_invalidations"] == 1

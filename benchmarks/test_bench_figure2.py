"""Figure 2 bench: sequential kernel time (MatProd+MatMin, FloydWarshall) vs block size.

The paper sweeps b from ~500 to 10,000 on a Skylake node with MKL; here the
same kernels are swept over block sizes that fit this machine's time budget.
The quantity of interest is the O(b^3) growth curve and the relative cost of
the two kernels (min-plus products are several times more expensive than the
in-place Floyd-Warshall at equal b, as in the paper's figure).
"""

import numpy as np
import pytest

from repro.linalg.kernels import floyd_warshall_inplace
from repro.linalg.semiring import elementwise_min, minplus_product

BLOCK_SIZES = (64, 128, 256)


def _random_block(b: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    block = rng.uniform(1.0, 10.0, size=(b, b))
    np.fill_diagonal(block, 0.0)
    return block


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_bench_minplus_matmin(benchmark, block_size):
    """MatProd followed by MatMin — the Repeated Squaring / blocked phase-3 kernel."""
    a = _random_block(block_size, seed=1)
    b = _random_block(block_size, seed=2)
    benchmark.extra_info["block_size"] = block_size
    benchmark(lambda: elementwise_min(a, minplus_product(a, b)))


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_bench_floyd_warshall_block(benchmark, block_size):
    """The FloydWarshall diagonal-block kernel (phase 1 of the blocked solvers)."""
    a = _random_block(block_size, seed=3)
    benchmark.extra_info["block_size"] = block_size
    benchmark(lambda: floyd_warshall_inplace(a.copy()))

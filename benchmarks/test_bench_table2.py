"""Table 2 bench: effect of block size on each solver's execution time.

Runs every solver end-to-end on the mini-Spark engine for a sweep of block
sizes (the engine-scale analogue of Table 2's per-block-size rows).  The
per-iteration time and the iteration count recorded in ``extra_info`` are the
quantities Table 2 reports; paper-scale projections come from
``apspark table2 --mode projected``.
"""

import pytest

from repro.core.api import get_solver_class
from repro.core.base import SolverOptions

SOLVERS = ("repeated-squaring", "fw-2d", "blocked-im", "blocked-cb")
BLOCK_SIZES = (16, 32, 64)


@pytest.mark.parametrize("solver", SOLVERS)
@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_bench_solver_block_size(benchmark, bench_config, bench_graph, solver, block_size):
    solver_cls = get_solver_class(solver)
    options = SolverOptions(block_size=block_size, partitioner="MD")

    def run():
        return solver_cls(config=bench_config, options=options).solve(bench_graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["single_iteration_seconds"] = (
        result.elapsed_seconds / max(1, result.iterations))
    benchmark.extra_info["shuffle_bytes"] = result.metrics["shuffle_bytes"]
    benchmark.extra_info["sharedfs_bytes"] = result.metrics["sharedfs_bytes_written"]

"""Table 2 bench: effect of block size on each solver's execution time.

Runs every solver end-to-end on the mini-Spark engine for a sweep of block
sizes (the engine-scale analogue of Table 2's per-block-size rows).  The
scenario grid is suite ``blocksize`` in :mod:`repro.bench.scenarios`, shared
with the JSON harness (``apspark bench run --suite blocksize``); paper-scale
projections come from ``apspark table2 --mode projected``.
"""

import pytest

from repro.bench import get_suite, solve_scenario
from repro.core.engine import APSPEngine

SUITE = get_suite("blocksize")


@pytest.mark.parametrize("scenario", SUITE.scenarios, ids=lambda s: s.name)
def test_bench_solver_block_size(benchmark, scenario):
    with APSPEngine(scenario.engine_config()) as engine:
        result = benchmark.pedantic(lambda: solve_scenario(scenario, engine),
                                    rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["single_iteration_seconds"] = (
        result.elapsed_seconds / max(1, result.iterations))
    benchmark.extra_info["shuffle_bytes"] = result.metrics["shuffle_bytes"]
    benchmark.extra_info["sharedfs_bytes"] = result.metrics["sharedfs_bytes_written"]

"""Figure 3 bench: blocked solvers x block size x partitioner x over-decomposition.

Engine-scale analogue of Figure 3's top/middle panels: Blocked In-Memory and
Blocked Collect/Broadcast swept over the PH and MD partitioners and
B ∈ {1, 2} partitions per core.  The grid is suite ``partitioner`` in
:mod:`repro.bench.scenarios` (shared with the JSON harness); the
partition-size distribution (bottom panel) is a pure function of the
partitioner and is exercised in ``test_bench_partitioner.py`` and the unit
tests.
"""

import pytest

from repro.bench import get_suite, solve_scenario
from repro.core.engine import APSPEngine

SUITE = get_suite("partitioner")


@pytest.mark.parametrize("scenario", SUITE.scenarios, ids=lambda s: s.name)
def test_bench_blocked_partitioner_sweep(benchmark, scenario):
    with APSPEngine(scenario.engine_config()) as engine:
        result = benchmark.pedantic(lambda: solve_scenario(scenario, engine),
                                    rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["partitioner"] = scenario.partitioner
    benchmark.extra_info["shuffle_bytes"] = result.metrics["shuffle_bytes"]
    benchmark.extra_info["num_partitions"] = result.num_partitions

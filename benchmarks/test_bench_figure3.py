"""Figure 3 bench: blocked solvers x block size x partitioner x over-decomposition.

Engine-scale analogue of Figure 3's top/middle panels: Blocked In-Memory and
Blocked Collect/Broadcast swept over block size for the PH and MD partitioners
and B ∈ {1, 2} partitions per core.  The partition-size distribution (bottom
panel) is a pure function of the partitioner and is exercised in
``test_bench_partitioner.py`` and the unit tests.
"""

import pytest

from repro.core.api import get_solver_class
from repro.core.base import SolverOptions

SOLVERS = ("blocked-im", "blocked-cb")
PARTITIONERS = ("MD", "PH")
B_FACTORS = (1, 2)


@pytest.mark.parametrize("solver", SOLVERS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("b_factor", B_FACTORS)
def test_bench_blocked_partitioner_sweep(benchmark, bench_config, bench_graph,
                                         solver, partitioner, b_factor):
    solver_cls = get_solver_class(solver)
    options = SolverOptions(block_size=32, partitioner=partitioner,
                            partitions_per_core=b_factor)

    def run():
        return solver_cls(config=bench_config, options=options).solve(bench_graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["shuffle_bytes"] = result.metrics["shuffle_bytes"]
    benchmark.extra_info["num_partitions"] = result.num_partitions

"""Ablation bench: symmetric (upper-triangular) vs full block storage.

The paper stores only the upper triangle of the adjacency matrix and
regenerates the transposed blocks on demand, halving RDD volume at the price
of extra transposition work.  This bench quantifies both sides at engine scale:
decomposition/assembly cost and the volume held in the RDD.
"""

import pytest

from repro.linalg.blocks import blocks_to_matrix, matrix_to_blocks

BLOCK_SIZE = 16


@pytest.mark.parametrize("upper_only", (True, False), ids=("upper-triangular", "full"))
def test_bench_decompose(benchmark, bench_graph, upper_only):
    def decompose():
        return list(matrix_to_blocks(bench_graph, BLOCK_SIZE, upper_only=upper_only))

    blocks = benchmark(decompose)
    benchmark.extra_info["num_blocks"] = len(blocks)
    benchmark.extra_info["stored_bytes"] = int(sum(b.nbytes for _, b in blocks))


@pytest.mark.parametrize("upper_only", (True, False), ids=("upper-triangular", "full"))
def test_bench_reassemble(benchmark, bench_graph, upper_only):
    n = bench_graph.shape[0]
    blocks = list(matrix_to_blocks(bench_graph, BLOCK_SIZE, upper_only=upper_only))
    benchmark(lambda: blocks_to_matrix(blocks, n, BLOCK_SIZE, symmetric=upper_only))

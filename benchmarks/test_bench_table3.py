"""Table 3 / Figure 5 bench: weak scaling of the blocked solvers vs the baselines.

The paper holds n/p = 256 and scales p; here the simulated core count of the
engine scales with the problem size (n/p = 16 at laptop scale) and the same
four competitors are measured: Blocked-IM, Blocked-CB, the message-passing
2D Floyd-Warshall, and the divide-and-conquer solver, plus the sequential
reference that anchors the Gop/s-per-core normalization.
"""

import pytest

from repro.bench import get_suite, solve_scenario
from repro.core.engine import APSPEngine
from repro.graph.generators import erdos_renyi_adjacency
from repro.mpi.divide_conquer import dc_apsp
from repro.mpi.fw2d import fw2d_mpi_apsp
from repro.sequential.floyd_warshall import floyd_warshall_reference

#: (simulated cores p, problem size n = 16 * p) — mirrors suite ``scaling``.
WEAK_SCALING_POINTS = ((4, 64), (8, 128), (16, 256))

#: The Spark-side weak-scaling grid shared with the JSON harness.
SUITE = get_suite("scaling")


def _graph(n):
    return erdos_renyi_adjacency(n, seed=1000 + n)


@pytest.mark.parametrize("scenario", SUITE.scenarios, ids=lambda s: s.name)
def test_bench_weak_scaling_spark(benchmark, scenario):
    with APSPEngine(scenario.engine_config()) as engine:
        result = benchmark.pedantic(lambda: solve_scenario(scenario, engine),
                                    rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["p"] = scenario.engine_config().total_cores
    benchmark.extra_info["n"] = scenario.n
    benchmark.extra_info["gops"] = result.gops


@pytest.mark.parametrize("p,n", WEAK_SCALING_POINTS)
def test_bench_weak_scaling_fw2d_mpi(benchmark, p, n):
    adjacency = _graph(n)
    benchmark.extra_info["p"] = p
    benchmark.pedantic(lambda: fw2d_mpi_apsp(adjacency, num_ranks=4),
                       rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("p,n", WEAK_SCALING_POINTS)
def test_bench_weak_scaling_dc(benchmark, p, n):
    adjacency = _graph(n)
    benchmark.extra_info["p"] = p
    benchmark.pedantic(lambda: dc_apsp(adjacency, base_case=max(16, n // 8)),
                       rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("p,n", WEAK_SCALING_POINTS)
def test_bench_weak_scaling_sequential_reference(benchmark, p, n):
    """The T1 reference of Section 5.4 (sequential SciPy Floyd-Warshall)."""
    adjacency = _graph(n)
    benchmark.extra_info["n"] = n
    benchmark.pedantic(lambda: floyd_warshall_reference(adjacency),
                       rounds=1, iterations=1, warmup_rounds=0)

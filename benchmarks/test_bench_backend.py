"""Ablation bench: engine execution backend (serial vs thread pool).

The thread-pool backend exploits the fact that NumPy block kernels release the
GIL; this bench measures how much of that parallelism the Blocked
Collect/Broadcast solver actually captures on this machine.
"""

import pytest

from repro.common.config import EngineConfig
from repro.core.base import SolverOptions
from repro.core.blocked_collect_broadcast import BlockedCollectBroadcastSolver


@pytest.mark.parametrize("backend", ("serial", "threads"))
def test_bench_backend(benchmark, bench_graph, backend):
    config = EngineConfig(backend=backend, num_executors=2, cores_per_executor=2)
    options = SolverOptions(block_size=32, partitioner="MD")

    def run():
        return BlockedCollectBroadcastSolver(config=config, options=options).solve(bench_graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["tasks"] = result.metrics["tasks_launched"]

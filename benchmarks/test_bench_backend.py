"""Ablation bench: engine execution backend (serial vs threads vs processes).

The thread-pool backend exploits the fact that NumPy block kernels release the
GIL; the process-pool backend ships picklable kernel payloads to worker
processes for GIL-free multi-core execution.  The scenario grid lives in
:mod:`repro.bench.scenarios` (suite ``backends``) so this module, the JSON
harness (``apspark bench run --suite backends``), and the CI regression gate
all measure the identical workload.
"""

import pytest

from repro.bench import get_suite, solve_scenario
from repro.core.engine import APSPEngine

SUITE = get_suite("backends")


@pytest.mark.parametrize("scenario", SUITE.scenarios, ids=lambda s: s.name)
def test_bench_backend(benchmark, scenario):
    with APSPEngine(scenario.engine_config()) as engine:
        result = benchmark.pedantic(lambda: solve_scenario(scenario, engine),
                                    rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["backend"] = scenario.backend
    benchmark.extra_info["tasks"] = result.metrics["tasks_launched"]

"""Shared fixtures for the benchmark harness.

Each ``test_bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index) at a scale that fits this machine, plus the
ablation benches called out in DESIGN.md.  Paper-scale numbers are produced by
the projected mode of :mod:`repro.experiments` (not benchmarked here).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.graph.generators import erdos_renyi_adjacency


@pytest.fixture(scope="session")
def bench_config() -> EngineConfig:
    """Engine configuration used by all solver benchmarks."""
    return EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)


@pytest.fixture(scope="session")
def bench_graph() -> np.ndarray:
    """The benchmark workload: an Erdős–Rényi graph with the paper's edge probability."""
    return erdos_renyi_adjacency(128, seed=1234)


@pytest.fixture(scope="session")
def large_bench_graph() -> np.ndarray:
    """A larger instance for the weak-scaling benchmark."""
    return erdos_renyi_adjacency(192, seed=4321)

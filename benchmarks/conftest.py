"""Shared fixtures for the benchmark harness.

Each ``test_bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index) at a scale that fits this machine, plus the
ablation benches called out in DESIGN.md.  Paper-scale numbers are produced by
the projected mode of :mod:`repro.experiments` (not benchmarked here).

Scales are environment-tunable through ``APSPARK_BENCH_N`` (see
:func:`repro.bench.bench_scale_n`): the CI smoke job sets a tiny value, local
deep runs can crank it up, and both share these fixtures and the suite
definitions in :mod:`repro.bench.scenarios`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import bench_scale_n
from repro.common.config import EngineConfig
from repro.graph.generators import erdos_renyi_adjacency


@pytest.fixture(scope="session")
def bench_n() -> int:
    """Benchmark problem size: ``APSPARK_BENCH_N`` when set, else 128."""
    return bench_scale_n(128)


@pytest.fixture(scope="session")
def bench_config() -> EngineConfig:
    """Engine configuration used by all solver benchmarks."""
    return EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)


@pytest.fixture(scope="session")
def bench_graph(bench_n) -> np.ndarray:
    """The benchmark workload: an Erdős–Rényi graph with the paper's edge probability."""
    return erdos_renyi_adjacency(bench_n, seed=1234)

"""Ablation bench: kernel implementation choices.

* dense NumPy Floyd-Warshall vs the SciPy (C) implementation — the paper
  offloads the diagonal-block solve to SciPy/MKL;
* min-plus product column-chunk size — the cache-aware vectorization knob;
* dense vs per-source Dijkstra on a sparse instance — the paper argues the
  dense-block representation is the right default because the matrix fills in
  quickly.
"""

import pytest

from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.kernels import floyd_warshall, floyd_warshall_scipy
from repro.linalg.semiring import minplus_product
from repro.sequential.dijkstra import apsp_dijkstra

N = 160


@pytest.fixture(scope="module")
def kernel_graph():
    return erdos_renyi_adjacency(N, seed=77)


def test_bench_floyd_warshall_numpy(benchmark, kernel_graph):
    benchmark(lambda: floyd_warshall(kernel_graph))


def test_bench_floyd_warshall_scipy(benchmark, kernel_graph):
    benchmark(lambda: floyd_warshall_scipy(kernel_graph))


def test_bench_apsp_dijkstra_sparse(benchmark, kernel_graph):
    benchmark.pedantic(lambda: apsp_dijkstra(kernel_graph),
                       rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("chunk", (8, 64, 256))
def test_bench_minplus_chunk_size(benchmark, kernel_graph, chunk):
    benchmark.extra_info["chunk"] = chunk
    benchmark(lambda: minplus_product(kernel_graph, kernel_graph, chunk=chunk))

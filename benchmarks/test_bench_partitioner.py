"""Ablation bench: partitioner choice (PH vs MD vs GRID).

Measures (a) the raw cost of assigning upper-triangular block keys to
partitions and (b) the resulting balance, the mechanism behind the Figure 3
bottom panel and the Section 5.3 tuning discussion.
"""

import pytest

from repro.linalg.blocks import upper_triangular_block_ids
from repro.spark.partitioner import partitioner_by_name

PARTITIONERS = ("PH", "MD", "GRID")
Q = 128                 # the paper's n=131072 / b=1024 grid
NUM_PARTITIONS = 2048   # p=1024, B=2


@pytest.mark.parametrize("name", PARTITIONERS)
def test_bench_partition_assignment(benchmark, name):
    keys = list(upper_triangular_block_ids(Q))
    partitioner = partitioner_by_name(name, NUM_PARTITIONS, Q)

    def assign():
        return [partitioner(key) for key in keys]

    benchmark(assign)
    counts = partitioner.distribution(keys)
    benchmark.extra_info["max_blocks_per_partition"] = int(counts.max())
    benchmark.extra_info["std_blocks_per_partition"] = float(counts.std())


@pytest.mark.parametrize("name", ("PH", "MD"))
def test_bench_partitioner_effect_on_solver(benchmark, bench_config, bench_graph, name):
    """End-to-end effect of the partitioner on the Blocked In-Memory solver."""
    from repro.core.blocked_inmemory import BlockedInMemorySolver
    from repro.core.base import SolverOptions

    options = SolverOptions(block_size=32, partitioner=name)

    def run():
        return BlockedInMemorySolver(config=bench_config, options=options).solve(bench_graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["shuffle_bytes"] = result.metrics["shuffle_bytes"]

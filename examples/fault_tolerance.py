"""Fault tolerance: pure vs impure solvers under injected failures.

The paper distinguishes *pure* solvers (only fault-tolerant Spark operations;
lost tasks are recomputed from lineage) from *impure* ones (data staged in a
shared file system is outside lineage and may be unrecoverable).  This example

1. runs the pure Blocked In-Memory solver while injecting task failures and
   shows the result is still correct (tasks are retried / recomputed), and
2. deletes a staged block from the shared file system mid-run of the impure
   Blocked Collect/Broadcast solver and shows the run aborts with a
   lineage error, exactly the hazard Section 4.2 describes.

Run with:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.common.config import EngineConfig
from repro.common.errors import LineageError
from repro.core import BlockedCollectBroadcastSolver, BlockedInMemorySolver, SolverOptions
from repro.graph import erdos_renyi_adjacency
from repro.sequential import floyd_warshall_reference
from repro.spark.context import SparkContext
from repro.spark.faults import FaultPlan


def main() -> int:
    adjacency = erdos_renyi_adjacency(96, seed=5)
    reference = floyd_warshall_reference(adjacency)
    config = EngineConfig(num_executors=4, cores_per_executor=2)
    options = SolverOptions(block_size=16, partitioner="MD")

    # --- Pure solver with injected task failures --------------------------------
    print("Running the pure Blocked In-Memory solver with injected task failures...")
    plan = FaultPlan(fail_task_indices=frozenset({3, 17, 40, 77}), max_failures=4)
    context = SparkContext(config, fault_plan=plan)
    solver = BlockedInMemorySolver(config=config, options=options)
    result = solver.solve(adjacency, context=context)
    injected = context.fault_injector.injected_failures
    retried = context.metrics.tasks_retried
    context.stop()
    assert np.allclose(result.distances, reference)
    print(f"  injected {injected} task failures, engine retried {retried} tasks, "
          "result still matches the reference.")

    # --- Impure solver losing shared-filesystem data ------------------------------
    print("Running the impure Blocked Collect/Broadcast solver and deleting staged data...")
    context = SparkContext(config)
    solver = BlockedCollectBroadcastSolver(config=config, options=options)

    original_write = context.shared_fs.write
    state = {"dropped": False}

    def sabotaging_write(name, value):
        path = original_write(name, value)
        # Simulate the staged file disappearing before executors read it
        # (e.g. the task is rescheduled on a node after cleanup).
        if not state["dropped"] and "rowcol" in name:
            context.shared_fs.drop(path)
            state["dropped"] = True
        return path

    context.shared_fs.write = sabotaging_write
    try:
        solver.solve(adjacency, context=context)
        print("  unexpectedly succeeded (no staged data was read after the drop)")
    except LineageError as exc:
        print(f"  run failed as expected: {exc}")
        print("  impure solvers cannot recover staged data from lineage "
              "— the paper's fault-tolerance caveat.")
    finally:
        context.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Partitioner tuning: why the multi-diagonal partitioner beats portable_hash.

Reproduces the reasoning behind Section 5.3 / Figures 3 and 4 of the paper:

1. shows the block-to-partition layout of the multi-diagonal (MD) partitioner
   (Figure 4) for a small grid,
2. compares the partition-size distributions of MD and pySpark's default
   portable-hash (PH) partitioner on upper-triangular block keys (Figure 3,
   bottom panel) at paper scale,
3. measures the effect on an actual solver run at laptop scale, and
4. projects the effect at the paper's scale with the cost model.

Run with:  python examples/partitioner_tuning.py
"""

import time

import numpy as np

from repro import solve_apsp
from repro.cluster import CostModel
from repro.common.config import EngineConfig
from repro.common.timing import format_seconds
from repro.experiments.figure3 import partition_size_distribution
from repro.experiments.report import format_table
from repro.graph import erdos_renyi_adjacency
from repro.spark.partitioner import MultiDiagonalPartitioner


def main() -> int:
    # 1. Figure 4: the MD layout for a q=8 grid over 4 partitions.
    md = MultiDiagonalPartitioner(num_partitions=4, q=8)
    print("Multi-diagonal partitioner layout (block (I,J) -> partition), q=8, 4 partitions:")
    print(md.layout())
    print()

    # 2. Figure 3 (bottom): partition-size distributions at paper scale.
    rows = []
    for name in ("MD", "PH"):
        for block_size in (512, 1024, 2048):
            rows.append(partition_size_distribution(
                n=131072, block_size=block_size, num_partitions=2048, partitioner_name=name))
    print(format_table(rows, title="Blocks per partition, n=131072, 2048 partitions (Figure 3 bottom)"))

    # 3. Measured effect on a real (small) run.
    adjacency = erdos_renyi_adjacency(192, seed=23)
    config = EngineConfig(num_executors=4, cores_per_executor=2)
    measured = []
    for name in ("MD", "PH"):
        start = time.perf_counter()
        result = solve_apsp(adjacency, solver="blocked-im", block_size=24,
                            partitioner=name, config=config)
        measured.append({"partitioner": name,
                         "seconds": time.perf_counter() - start,
                         "shuffle_MB": result.metrics["shuffle_bytes"] / 1e6})
    print(format_table(measured, title="Measured Blocked In-Memory run, n=192 (this machine)"))

    # 4. Projection at the paper's scale.
    cm = CostModel()
    projected = []
    for name in ("MD", "PH"):
        for b_factor in (1, 2):
            proj = cm.project("blocked-im", n=131072, block_size=1024, p=1024,
                              partitioner=name, partitions_per_core=b_factor)
            projected.append({
                "partitioner": name,
                "B": b_factor,
                "imbalance": round(proj.iteration.imbalance_factor, 2),
                "projected_total": format_seconds(proj.projected_total_seconds),
            })
    print(format_table(projected,
                       title="Projected Blocked In-Memory total, n=131072, p=1024 (paper scale)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

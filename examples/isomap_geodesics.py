"""Manifold learning workload: geodesic distances for Isomap via distributed APSP.

This is the use case the paper's introduction motivates: shortest paths over a
k-nearest-neighbour graph of high-dimensional points are a robust
approximation of geodesic distances on the underlying manifold, and spectral
methods such as Isomap consume the full APSP matrix.  The example

1. samples points from a "Swiss roll" surface embedded in 3-D,
2. builds the k-NN neighborhood graph,
3. computes all-pairs geodesic distances with the Blocked In-Memory solver,
4. embeds the points into 2-D with classical MDS on the geodesic distances,
5. checks that the embedding recovers the unrolled parametrization
   (correlation between the first embedding axis and the roll parameter).

Run with:  python examples/isomap_geodesics.py
"""

import numpy as np

from repro import solve_apsp
from repro.common.config import EngineConfig
from repro.graph import knn_adjacency


def swiss_roll(n: int, *, noise: float = 0.02, seed: int = 0):
    """Sample ``n`` points from a Swiss-roll surface; returns (points, roll parameter)."""
    rng = np.random.default_rng(seed)
    t = 1.5 * np.pi * (1.0 + 2.0 * rng.random(n))        # roll parameter
    height = 10.0 * rng.random(n)
    points = np.column_stack([t * np.cos(t), height, t * np.sin(t)])
    points += noise * rng.standard_normal(points.shape)
    return points, t


def classical_mds(distances: np.ndarray, dim: int = 2) -> np.ndarray:
    """Classical multidimensional scaling from a (geodesic) distance matrix."""
    n = distances.shape[0]
    d2 = np.where(np.isfinite(distances), distances, distances[np.isfinite(distances)].max()) ** 2
    centering = np.eye(n) - np.ones((n, n)) / n
    gram = -0.5 * centering @ d2 @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:dim]
    components = eigenvectors[:, order] * np.sqrt(np.maximum(eigenvalues[order], 0.0))
    return components


def main() -> int:
    n, k = 384, 8
    print(f"Sampling {n} points from a Swiss roll and building the {k}-NN graph...")
    points, roll_parameter = swiss_roll(n, seed=3)
    adjacency = knn_adjacency(points, k=k)

    config = EngineConfig(backend="threads", num_executors=4, cores_per_executor=2)
    print("Computing all-pairs geodesic distances (Blocked In-Memory solver)...")
    result = solve_apsp(adjacency, solver="blocked-im", block_size=48,
                        partitioner="MD", config=config)
    print(" ", result.summary())

    geodesic = result.distances
    reachable = np.isfinite(geodesic).all()
    print(f"  neighborhood graph connected: {reachable}")

    print("Embedding with classical MDS on geodesic distances (Isomap)...")
    embedding = classical_mds(geodesic, dim=2)
    corr = np.corrcoef(embedding[:, 0], roll_parameter)[0, 1]
    print(f"  |correlation| between first Isomap axis and roll parameter: {abs(corr):.3f}")
    if abs(corr) > 0.8:
        print("  the embedding successfully unrolls the manifold.")
    else:
        print("  weak correlation — try increasing n or k.")

    # Contrast with plain Euclidean MDS, which cannot unroll the manifold.
    euclid = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2))
    euclid_embedding = classical_mds(euclid, dim=2)
    euclid_corr = np.corrcoef(euclid_embedding[:, 0], roll_parameter)[0, 1]
    print(f"  (Euclidean MDS correlation for comparison: {abs(euclid_corr):.3f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Compare all APSP solvers — the paper's four Spark solvers and the baselines.

Runs every solver on the same Erdős–Rényi instance, verifies each against the
sequential reference, and prints a comparison of runtimes, iteration counts,
purity (fault tolerance) and data movement, mirroring the structure of the
paper's Section 5 discussion at a scale that fits one machine.

Run with:  python examples/solver_comparison.py
"""

import time

import numpy as np

from repro import APSPEngine, SolveRequest, available_solvers
from repro.common.config import EngineConfig
from repro.experiments.report import format_table
from repro.graph import erdos_renyi_adjacency
from repro.mpi import dc_apsp, fw2d_mpi_apsp
from repro.sequential import apsp_dijkstra, floyd_warshall_reference, johnson_apsp


def main() -> int:
    n = 144
    adjacency = erdos_renyi_adjacency(n, seed=11)
    reference = floyd_warshall_reference(adjacency)
    config = EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)
    rows = []

    # The paper's four Spark solvers, batched through one engine session
    # (a single Spark context serves the whole comparison).
    with APSPEngine(config) as engine:
        requests = [(adjacency, SolveRequest(solver=solver, block_size=24,
                                             partitioner="MD", tag=solver))
                    for solver in available_solvers()]
        for job in engine.solve_many(requests):
            result = job.result()
            rows.append({
                "solver": result.solver,
                "kind": "spark",
                "pure": result.pure,
                "iterations": result.iterations,
                "seconds": result.elapsed_seconds,
                "shuffle_MB": result.metrics["shuffle_bytes"] / 1e6,
                "sharedfs_MB": result.metrics["sharedfs_bytes_written"] / 1e6,
                "correct": bool(np.allclose(result.distances, reference)),
            })

    # Message-passing baselines (Section 5.5).
    start = time.perf_counter()
    fw2d = fw2d_mpi_apsp(adjacency, num_ranks=4)
    rows.append({"solver": "fw-2d-mpi", "kind": "mpi", "pure": True, "iterations": n,
                 "seconds": time.perf_counter() - start, "shuffle_MB": 0.0, "sharedfs_MB": 0.0,
                 "correct": bool(np.allclose(fw2d, reference))})

    start = time.perf_counter()
    dc = dc_apsp(adjacency, base_case=32)
    rows.append({"solver": "dc (Solomonik)", "kind": "mpi", "pure": True, "iterations": 1,
                 "seconds": time.perf_counter() - start, "shuffle_MB": 0.0, "sharedfs_MB": 0.0,
                 "correct": bool(np.allclose(dc, reference))})

    # Classic sequential algorithms (Section 3).
    for name, func in (("johnson", johnson_apsp), ("dijkstra-all-sources", apsp_dijkstra)):
        start = time.perf_counter()
        dist = func(adjacency)
        rows.append({"solver": name, "kind": "sequential", "pure": True, "iterations": 1,
                     "seconds": time.perf_counter() - start, "shuffle_MB": 0.0,
                     "sharedfs_MB": 0.0, "correct": bool(np.allclose(dist, reference))})

    print(format_table(rows, title=f"APSP solver comparison on G(n={n}, p≈ln(n)/n)"))
    assert all(r["correct"] for r in rows), "some solver disagreed with the reference!"
    print("All solvers agree with the sequential Floyd-Warshall reference.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

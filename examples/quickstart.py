"""Quickstart: an `APSPEngine` session solving All-Pairs Shortest-Paths.

Builds the paper's evaluation workload (an Erdős–Rényi graph with edge
probability just above the connectivity threshold), opens one engine session
— a single long-lived Spark context, like the paper's cluster runs — solves
the instance with the best-performing solver (Blocked Collect/Broadcast),
then re-solves on the *same* context with the pure Blocked In-Memory solver,
verifies both against the sequential SciPy Floyd-Warshall reference, and
prints the per-job and per-session engine metrics.

Migrating from ``solve_apsp``: a one-off call still works unchanged
(``solve_apsp(adj, solver="blocked-cb", block_size=32)``), but anything that
solves more than once should hold an engine open instead::

    with APSPEngine(config) as engine:
        result = engine.solve(adjacency, SolveRequest(solver="blocked-cb"))

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import APSPEngine, SolveRequest
from repro.common.config import EngineConfig
from repro.graph import erdos_renyi_adjacency, paper_edge_probability
from repro.sequential import floyd_warshall_reference


def main() -> int:
    n = 256
    print(f"Generating Erdős–Rényi graph: n={n}, "
          f"p_e=(1+0.1)*ln(n)/n={paper_edge_probability(n):.4f}")
    adjacency = erdos_renyi_adjacency(n, seed=42)

    # A small simulated cluster: 4 executors x 2 cores, thread-pool backend.
    config = EngineConfig(backend="threads", num_executors=4, cores_per_executor=2)
    reference = floyd_warshall_reference(adjacency)

    with APSPEngine(config) as engine:
        # The typed request validates every knob up front.
        request = SolveRequest(solver="blocked-cb", block_size=32,
                               partitioner="MD", validate=True)
        print("Solving with the Blocked Collect/Broadcast solver (Algorithm 4)...")
        result = engine.solve(adjacency, request)
        print(" ", result.summary())

        print("Re-solving on the same context with Blocked In-Memory (Algorithm 3)...")
        second = engine.solve(adjacency, solver="blocked-im", block_size=32)
        print(" ", second.summary())

        print("Verifying against sequential SciPy Floyd-Warshall...")
        assert np.allclose(result.distances, reference), "distance matrices differ!"
        assert np.allclose(second.distances, reference), "distance matrices differ!"
        print("  both solvers match the reference exactly.")

        finite = np.isfinite(result.distances) & ~np.eye(n, dtype=bool)
        print(f"  reachable pairs: {int(finite.sum())} / {n * (n - 1)}")
        print(f"  mean shortest-path length: {result.distances[finite].mean():.3f}")

        metrics = result.metrics  # attributed to the first job alone
        print("Data movement of the blocked-cb job:")
        print(f"  shuffled        {metrics['shuffle_bytes'] / 1e6:8.2f} MB "
              f"({metrics['shuffle_records']} records, {metrics['shuffle_count']} shuffles)")
        print(f"  collected       {metrics['collect_bytes'] / 1e6:8.2f} MB to the driver")
        print(f"  shared storage  {metrics['sharedfs_bytes_written'] / 1e6:8.2f} MB written, "
              f"{metrics['sharedfs_bytes_read'] / 1e6:8.2f} MB read")

        stats = engine.stats()  # accumulated over the whole session
        print("Engine session totals:")
        print(f"  jobs completed  {stats['jobs_completed']} on one Spark context")
        print(f"  tasks launched  {stats['tasks_launched']}")
        print(f"  solve time      {stats['total_solve_seconds']:.3f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Quickstart: solve All-Pairs Shortest-Paths on a synthetic graph with Spark-style solvers.

Builds the paper's evaluation workload (an Erdős–Rényi graph with edge
probability just above the connectivity threshold), runs the best-performing
solver (Blocked Collect/Broadcast), verifies the result against the sequential
SciPy Floyd-Warshall reference, and prints the engine's data-movement metrics.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import solve_apsp
from repro.common.config import EngineConfig
from repro.graph import erdos_renyi_adjacency, paper_edge_probability
from repro.sequential import floyd_warshall_reference


def main() -> int:
    n = 256
    print(f"Generating Erdős–Rényi graph: n={n}, "
          f"p_e=(1+0.1)*ln(n)/n={paper_edge_probability(n):.4f}")
    adjacency = erdos_renyi_adjacency(n, seed=42)

    # A small simulated cluster: 4 executors x 2 cores, thread-pool backend.
    config = EngineConfig(backend="threads", num_executors=4, cores_per_executor=2)

    print("Solving with the Blocked Collect/Broadcast solver (Algorithm 4)...")
    result = solve_apsp(adjacency, solver="blocked-cb", block_size=32,
                        partitioner="MD", config=config, validate=True)
    print(" ", result.summary())

    print("Verifying against sequential SciPy Floyd-Warshall...")
    reference = floyd_warshall_reference(adjacency)
    assert np.allclose(result.distances, reference), "distance matrices differ!"
    print("  distances match the reference exactly.")

    finite = np.isfinite(result.distances) & ~np.eye(n, dtype=bool)
    print(f"  reachable pairs: {int(finite.sum())} / {n * (n - 1)}")
    print(f"  mean shortest-path length: {result.distances[finite].mean():.3f}")

    metrics = result.metrics
    print("Engine data movement:")
    print(f"  shuffled        {metrics['shuffle_bytes'] / 1e6:8.2f} MB "
          f"({metrics['shuffle_records']} records, {metrics['shuffle_count']} shuffles)")
    print(f"  collected       {metrics['collect_bytes'] / 1e6:8.2f} MB to the driver")
    print(f"  shared storage  {metrics['sharedfs_bytes_written'] / 1e6:8.2f} MB written, "
          f"{metrics['sharedfs_bytes_read'] / 1e6:8.2f} MB read")
    print(f"  tasks launched  {metrics['tasks_launched']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
